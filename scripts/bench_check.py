#!/usr/bin/env python
"""Pre-merge gate: tier-1 tests plus a campaign determinism smoke.

Runs, in order:

1. the tier-1 test suite (``pytest -x -q`` with ``src`` on the path);
2. a ~30 s benchmark smoke at ``device_scale=0.05`` over 14 days,
   failing hard if the parallel campaign's dataset hash differs from
   the serial one, if the fault-free dataset hash drifts from the
   pinned ``SMOKE_DATASET_SHA256`` golden (the transport layer's
   byte-identity contract) — and, on a multi-core box, if the parallel
   campaign is *slower* than the serial one (an executor-selection
   regression; single-core boxes only note the expected slowdown);
3. the DNS fast-path gate: a stage-breakdown smoke whose
   ``dns_us_per_call`` must stay within 25% of the committed
   ``BENCH_campaign.json`` figure (guards the compiled-plan /
   tuple-key resolution fast path against silent regression; the
   25% headroom absorbs box noise);
4. the analysis fast-path gate: the fused table+figure regeneration
   must render **byte-identical** to the reference per-function walks
   (hard failure — correctness, not speed), and its steady-state
   ``us_per_record`` must stay within 50% of the committed figure
   (more headroom than the DNS gate: the measured interval is
   shorter, so box noise is proportionally larger).

Exit status is non-zero on any test failure, on a determinism-hash
mismatch, on a multi-core parallel slowdown, on an analysis identity
break, or on a fast-path regression, so CI (or a pre-push hook) can
call this one script.

Usage::

    python scripts/bench_check.py [--skip-tests]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def run_tier1() -> int:
    """The repo's tier-1 suite, exactly as the roadmap specifies it."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    print("== tier-1 test suite ==", flush=True)
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO_ROOT, env=env
    )
    return result.returncode


def run_bench_smoke() -> int:
    """Small campaign, serial and parallel, hashes must match."""
    sys.path.insert(0, SRC)
    from repro.measure.bench import (
        SMOKE_DATASET_SHA256,
        BenchScale,
        bench_campaign,
    )

    print("== campaign determinism smoke ==", flush=True)
    report = bench_campaign(
        BenchScale(device_scale=0.05, duration_days=14.0, interval_hours=12.0)
    )
    print(
        f"{report['experiments']} experiments | "
        f"serial {report['serial_exp_per_s']}/s | "
        f"parallel(x{report['workers']}) {report['parallel_exp_per_s']}/s | "
        f"hash {report['dataset_hash'][:16]}…",
        flush=True,
    )
    if not report["hash_match"]:
        print("FAIL: parallel dataset hash differs from serial", file=sys.stderr)
        return 1
    print("determinism: OK")
    if report["dataset_hash"] != SMOKE_DATASET_SHA256:
        print(
            f"FAIL: fault-free smoke hash {report['dataset_hash'][:16]}… "
            f"drifted from the pinned golden "
            f"{SMOKE_DATASET_SHA256[:16]}… — the transport layer's "
            f"byte-identity contract is broken",
            file=sys.stderr,
        )
        return 1
    print("fault-free golden hash: OK")
    cores = os.cpu_count() or 1
    if report["parallel_s"] > report["serial_s"]:
        if cores >= 2:
            print(
                f"FAIL: parallel ({report['parallel_s']}s) slower than serial "
                f"({report['serial_s']}s) on a {cores}-core box",
                file=sys.stderr,
            )
            return 1
        print(
            f"note: parallel slower than serial on 1 core (expected; "
            f"`--executor auto` runs serial here)"
        )
    else:
        print(f"parallel speedup: {report['parallel_speedup']}x on {cores} cores")
    return 0


#: Allowed dns_us_per_call slack over the committed benchmark before the
#: gate fails (1.25 == a ≥25% regression fails).
DNS_REGRESSION_LIMIT = 1.25


def run_dns_gate() -> int:
    """DNS fast path must stay within 25% of the committed benchmark."""
    sys.path.insert(0, SRC)
    from repro.measure.bench import bench_stage_breakdown

    committed_path = os.path.join(REPO_ROOT, "BENCH_campaign.json")
    if not os.path.exists(committed_path):
        print("note: no committed BENCH_campaign.json; skipping dns gate")
        return 0
    with open(committed_path) as handle:
        committed = json.load(handle)
    baseline = committed.get("stages", {}).get("dns_us_per_call")
    if not baseline:
        print("note: committed benchmark lacks dns_us_per_call; skipping dns gate")
        return 0
    print("== dns fast-path gate ==", flush=True)
    report = bench_stage_breakdown()
    measured = report["dns_us_per_call"]
    limit = baseline * DNS_REGRESSION_LIMIT
    print(
        f"dns {measured} us/call over {report['dns_calls']} calls | "
        f"committed {baseline} us/call | limit {round(limit, 1)} "
        f"(split: cache-hit {report['dns_cache_hit_s']}s, "
        f"walk {report['dns_walk_s']}s, "
        f"cdn-select {report['dns_cdn_select_s']}s)",
        flush=True,
    )
    if measured >= limit:
        print(
            f"FAIL: dns_us_per_call {measured} regressed >=25% over the "
            f"committed {baseline} (limit {round(limit, 1)})",
            file=sys.stderr,
        )
        return 1
    print("dns gate: OK")
    return 0


#: Allowed analysis us_per_record slack over the committed benchmark
#: (1.5 == a ≥50% regression fails; the regeneration interval is short,
#: so the gate leaves more room for box noise than the DNS gate).
ANALYSIS_REGRESSION_LIMIT = 1.5


def run_analysis_gate() -> int:
    """Fused analysis must stay byte-identical and near the committed pace."""
    sys.path.insert(0, SRC)
    from repro.measure.bench import bench_analysis

    committed_path = os.path.join(REPO_ROOT, "BENCH_campaign.json")
    if not os.path.exists(committed_path):
        print("note: no committed BENCH_campaign.json; skipping analysis gate")
        return 0
    with open(committed_path) as handle:
        committed = json.load(handle)
    baseline = committed.get("analysis", {}).get("us_per_record")
    if not baseline:
        print(
            "note: committed benchmark lacks analysis.us_per_record; "
            "skipping analysis gate"
        )
        return 0
    print("== analysis fast-path gate ==", flush=True)
    report = bench_analysis()
    measured = report["us_per_record"]
    limit = baseline * ANALYSIS_REGRESSION_LIMIT
    print(
        f"analysis {measured} us/record over {report['experiments']} "
        f"experiments | committed {baseline} us/record | "
        f"limit {round(limit, 1)} | "
        f"regen speedup {report['regeneration_speedup']}x | "
        f"ingest speedup {report['load_speedup']}x | "
        f"byte identical: {report['byte_identical']}",
        flush=True,
    )
    if not report["byte_identical"]:
        print(
            "FAIL: fused analysis output diverged from the reference "
            "walks (byte identity broken)",
            file=sys.stderr,
        )
        return 1
    if measured >= limit:
        print(
            f"FAIL: analysis us_per_record {measured} regressed >=50% over "
            f"the committed {baseline} (limit {round(limit, 1)})",
            file=sys.stderr,
        )
        return 1
    print("analysis gate: OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-tests", action="store_true",
        help="run only the determinism smoke",
    )
    args = parser.parse_args()
    if not args.skip_tests:
        status = run_tier1()
        if status != 0:
            return status
    status = run_bench_smoke()
    if status != 0:
        return status
    status = run_dns_gate()
    if status != 0:
        return status
    return run_analysis_gate()


if __name__ == "__main__":
    raise SystemExit(main())
