#!/usr/bin/env python
"""Pre-merge gate: tier-1 tests plus a campaign determinism smoke.

Runs, in order:

1. the tier-1 test suite (``pytest -x -q`` with ``src`` on the path);
2. a ~30 s benchmark smoke at ``device_scale=0.05`` over 14 days,
   failing hard if the parallel campaign's dataset hash differs from
   the serial one — and, on a multi-core box, if the parallel campaign
   is *slower* than the serial one (an executor-selection regression;
   single-core boxes only note the expected slowdown).

Exit status is non-zero on any test failure, on a determinism-hash
mismatch, or on a multi-core parallel slowdown, so CI (or a pre-push
hook) can call this one script.

Usage::

    python scripts/bench_check.py [--skip-tests]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def run_tier1() -> int:
    """The repo's tier-1 suite, exactly as the roadmap specifies it."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    print("== tier-1 test suite ==", flush=True)
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO_ROOT, env=env
    )
    return result.returncode


def run_bench_smoke() -> int:
    """Small campaign, serial and parallel, hashes must match."""
    sys.path.insert(0, SRC)
    from repro.measure.bench import BenchScale, bench_campaign

    print("== campaign determinism smoke ==", flush=True)
    report = bench_campaign(
        BenchScale(device_scale=0.05, duration_days=14.0, interval_hours=12.0)
    )
    print(
        f"{report['experiments']} experiments | "
        f"serial {report['serial_exp_per_s']}/s | "
        f"parallel(x{report['workers']}) {report['parallel_exp_per_s']}/s | "
        f"hash {report['dataset_hash'][:16]}…",
        flush=True,
    )
    if not report["hash_match"]:
        print("FAIL: parallel dataset hash differs from serial", file=sys.stderr)
        return 1
    print("determinism: OK")
    cores = os.cpu_count() or 1
    if report["parallel_s"] > report["serial_s"]:
        if cores >= 2:
            print(
                f"FAIL: parallel ({report['parallel_s']}s) slower than serial "
                f"({report['serial_s']}s) on a {cores}-core box",
                file=sys.stderr,
            )
            return 1
        print(
            f"note: parallel slower than serial on 1 core (expected; "
            f"`--executor auto` runs serial here)"
        )
    else:
        print(f"parallel speedup: {report['parallel_speedup']}x on {cores} cores")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-tests", action="store_true",
        help="run only the determinism smoke",
    )
    args = parser.parse_args()
    if not args.skip_tests:
        status = run_tier1()
        if status != 0:
            return status
    return run_bench_smoke()


if __name__ == "__main__":
    raise SystemExit(main())
