"""Large-population streaming smoke: ``make bench-scale``.

Runs a ``device_scale=10`` campaign — ~1,600 devices, ten times the
paper's 158-client population — through the sub-carrier sharded
executor's streaming path and asserts the parent process packages it in
bounded memory.  The workers spill event-ordered JSONL per shard task;
the parent k-way merges the spill files holding one write block at a
time, so its peak traced allocation must stay a small constant
regardless of campaign size.  A peak anywhere near the in-memory
dataset means some layer is accumulating records again.

A second run at the same scale rides a
:class:`~repro.analysis.engine.ProjectionAccumulator` on the merge —
the pipelined campaign→report path.  Its bound is higher (the analysis
aggregates are real state) but still a constant in the *aggregate*
domain: distinct carriers, domains and devices, never the record
stream.  The run must reproduce the merge-only content hash exactly and
its :class:`~repro.analysis.engine.StreamedDataset` must render the
full report without touching the output file.

A third leg exercises crash-safe resume at scale: the same campaign
runs checkpointed (per-shard durable commits, see
:mod:`repro.measure.checkpoint`), is interrupted after a third of its
shards have committed, and a fresh campaign object resumes it — the
resumed archive's content hash must be byte-identical to the first
leg's uninterrupted streaming hash.

Usage::

    PYTHONPATH=src python scripts/bench_scale.py [--scale 10] [--days 2]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
import tracemalloc

from repro.core.world import WorldConfig, build_world
from repro.measure.campaign import CampaignConfig, ShardedCampaign

#: Ceiling on the parent's peak traced allocation during the streaming
#: run (workers hold the simulation; the parent only merges lines).  An
#: in-memory package of the same campaign holds every record object —
#: tens of megabytes even at this smoke's scale and growing linearly —
#: so a breach is a regression signal, not noise.
PEAK_LIMIT_MB = 32.0

#: Ceiling for the accumulator-sink run: the merge bound plus the
#: analysis aggregates the fold legitimately holds (latency samples,
#: device timelines, replica maps — small per-record projections, never
#: the decoded record objects themselves).  Sized from a measured
#: ~144MB peak at the default 10x scale with headroom; holding the
#: decoded record stream itself would add hundreds of megabytes on top,
#: so a breach still means some layer started retaining records.
ACCUMULATOR_PEAK_LIMIT_MB = 256.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=10.0,
                        help="device_scale multiplier (default 10x paper)")
    parser.add_argument("--days", type=float, default=2.0)
    parser.add_argument("--interval-hours", type=float, default=12.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--limit-mb", type=float, default=PEAK_LIMIT_MB)
    parser.add_argument(
        "--accumulator-limit-mb", type=float,
        default=ACCUMULATOR_PEAK_LIMIT_MB,
    )
    args = parser.parse_args(argv)

    config = CampaignConfig(
        device_scale=args.scale,
        duration_days=args.days,
        interval_hours=args.interval_hours,
    )
    campaign = ShardedCampaign(
        build_world(WorldConfig(seed=args.seed)), config, workers=args.workers
    )
    print(
        f"bench-scale: {len(campaign.devices)} devices "
        f"({args.scale}x paper population), {args.days:g} days @ "
        f"{args.interval_hours:g}h, {len(campaign.ranges)} device ranges, "
        f"{campaign.shards} shard tasks, {campaign.workers} workers"
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
        output = os.path.join(tmp, "campaign.jsonl")
        tracemalloc.start()
        started = time.perf_counter()
        result = campaign.run_streaming(output)
        elapsed = time.perf_counter() - started
        peak_mb = tracemalloc.get_traced_memory()[1] / (1024 * 1024)
        tracemalloc.stop()
        size_mb = os.path.getsize(output) / (1024 * 1024)

    print(
        f"bench-scale: {result['experiments']} experiments in "
        f"{elapsed:.1f}s ({result['experiments'] / elapsed:.0f}/s) | "
        f"dataset {size_mb:.1f}MB on disk | parent peak {peak_mb:.1f}MB | "
        f"hash {result['content_hash'][:12]}"
    )
    if result["experiments"] <= 0:
        print("FAIL: streaming campaign produced no experiments",
              file=sys.stderr)
        return 1
    if peak_mb >= args.limit_mb:
        print(
            f"FAIL: parent peak memory {peak_mb:.1f}MB breaches the "
            f"{args.limit_mb:.0f}MB streaming bound",
            file=sys.stderr,
        )
        return 1
    print(f"OK: parent stayed under the {args.limit_mb:.0f}MB bound")

    # Second leg: the *same* campaign object re-runs with a
    # ProjectionAccumulator riding the merge (the pipelined
    # campaign→report path) — run tokens keep repeated runs idempotent
    # and the warm pool carries over, so this leg doubles as the
    # repeated-run determinism check at scale.  The fold's aggregates
    # are real state, so the bound is higher — but still in the
    # aggregate domain, never the record stream — and the archive hash
    # must not move by a byte.
    from repro.analysis.engine import ProjectionAccumulator, StreamedDataset
    from repro.core.study import CellularDNSStudy, StudyConfig

    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
        output = os.path.join(tmp, "campaign.jsonl")
        sink = ProjectionAccumulator()
        tracemalloc.start()
        started = time.perf_counter()
        streamed = campaign.run_streaming(output, sink=sink)
        engine = sink.finalize()
        sink_elapsed = time.perf_counter() - started
        sink_peak_mb = tracemalloc.get_traced_memory()[1] / (1024 * 1024)
        tracemalloc.stop()
    campaign.close()
    if campaign.pool_stats["reused"] < 1:
        print(
            "FAIL: the accumulator leg did not reuse the first leg's "
            f"warm worker pool (stats {campaign.pool_stats})",
            file=sys.stderr,
        )
        return 1

    print(
        f"bench-scale: accumulator leg {streamed['experiments']} "
        f"experiments in {sink_elapsed:.1f}s | parent peak "
        f"{sink_peak_mb:.1f}MB | hash {streamed['content_hash'][:12]}"
    )
    if streamed["content_hash"] != result["content_hash"]:
        print(
            "FAIL: accumulator-sink run changed the archive hash "
            f"({streamed['content_hash'][:12]} != "
            f"{result['content_hash'][:12]})",
            file=sys.stderr,
        )
        return 1
    if sink_peak_mb >= args.accumulator_limit_mb:
        print(
            f"FAIL: accumulator-leg peak memory {sink_peak_mb:.1f}MB "
            f"breaches the {args.accumulator_limit_mb:.0f}MB bound",
            file=sys.stderr,
        )
        return 1
    study = CellularDNSStudy(
        StudyConfig(
            seed=args.seed,
            device_scale=args.scale,
            duration_days=args.days,
            interval_hours=args.interval_hours,
        )
    )
    study.use_dataset(
        StreamedDataset(
            engine,
            streamed["content_hash"],
            streamed["experiments"],
            metadata=streamed["metadata"],
        )
    )
    report_text = study.regenerate_report().text
    if not report_text or "Table 1" not in report_text:
        print(
            "FAIL: streamed engine did not render the full report",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: accumulator stayed under the "
        f"{args.accumulator_limit_mb:.0f}MB bound; streamed report "
        f"rendered ({len(report_text)} chars) with zero archive re-read"
    )

    # Third leg: crash-safe resume at scale.  A checkpointed run of the
    # same campaign is interrupted after a third of its shards have
    # durably committed; a *fresh* campaign object (new process state,
    # new pool) resumes from the manifests and must reproduce the first
    # leg's content hash byte for byte.
    from repro.measure.checkpoint import CampaignInterrupted, run_checkpointed

    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
        output = os.path.join(tmp, "campaign.jsonl")
        interrupted = ShardedCampaign(
            build_world(WorldConfig(seed=args.seed)), config,
            workers=args.workers,
        )
        stop_after = max(1, interrupted.shards // 3)
        started = time.perf_counter()
        try:
            run_checkpointed(interrupted, output, stop_after_shards=stop_after)
            print(
                f"FAIL: checkpointed run was not interrupted after "
                f"{stop_after} shards",
                file=sys.stderr,
            )
            return 1
        except CampaignInterrupted as exc:
            first_elapsed = time.perf_counter() - started
            print(
                f"bench-scale: resume leg interrupted after "
                f"{exc.committed}/{interrupted.shards} shard commits "
                f"({first_elapsed:.1f}s)"
            )
        finally:
            interrupted.close()
        resumed_campaign = ShardedCampaign(
            build_world(WorldConfig(seed=args.seed)), config,
            workers=args.workers,
        )
        started = time.perf_counter()
        resumed = run_checkpointed(resumed_campaign, output, resume=True)
        resume_elapsed = time.perf_counter() - started
        resumed_campaign.close()
    print(
        f"bench-scale: resumed {resumed['resumed_shards']} committed "
        f"shards, executed {resumed['executed_shards']} of "
        f"{resumed['total_shards']} in {resume_elapsed:.1f}s | hash "
        f"{resumed['content_hash'][:12]}"
    )
    if resumed["content_hash"] != result["content_hash"]:
        print(
            "FAIL: resumed archive hash diverged from the uninterrupted "
            f"run ({resumed['content_hash'][:12]} != "
            f"{result['content_hash'][:12]})",
            file=sys.stderr,
        )
        return 1
    if resumed["resumed_shards"] < stop_after:
        print(
            f"FAIL: resume replayed only {resumed['resumed_shards']} "
            f"committed shards (expected >= {stop_after}) — the "
            f"checkpoints were not trusted",
            file=sys.stderr,
        )
        return 1
    print(
        "OK: interrupted + resumed archive is byte-identical to the "
        "uninterrupted run"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
