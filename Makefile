# Convenience targets; the package is never pip-installed, so every
# python invocation rides PYTHONPATH=src.

PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src

.PHONY: test lint bench bench-smoke bench-analysis bench-scale check

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

# Static checks via ruff (configured in pyproject.toml).  The lab image
# doesn't bundle ruff and installing deps is off the table there, so the
# target degrades to a note instead of failing the whole gate; CI
# installs `.[dev]` and gets the real check.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests scripts; \
	else \
		echo "note: ruff not installed (pip install -e '.[dev]'); skipping lint"; \
	fi

# Full throughput benchmark; rewrites BENCH_campaign.json (~60 s).
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli bench

# ~30 s determinism smoke: tiny campaign, serial vs parallel hashes
# must match; never touches the tracked BENCH_campaign.json.
bench-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli bench --smoke

# Analysis fast-path smoke: fused table+figure regeneration vs the
# reference per-function walks; fails if output is not byte-identical.
bench-analysis:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli bench --analysis

# Streaming-scale smoke (~60 s): a device_scale=10 campaign (10x the
# paper's population) through the sharded executor's streaming merge,
# asserting the parent packages it under a fixed memory bound — then
# the same campaign with the analysis accumulator riding the merge
# (the pipelined campaign→report path), under its own aggregate-domain
# bound, hash-checked against the merge-only run and rendering the
# full report with zero archive re-read.
bench-scale:
	$(PYTHONPATH_SRC) $(PYTHON) scripts/bench_scale.py

# The pre-merge gate: determinism + analysis smokes via the CLI, then
# the bench_check script (tier-1 suite + campaign smoke + parallel
# regression + the DNS/serializer and analysis fast-path gates + the
# pipelined campaign→report gate against the committed
# BENCH_campaign.json).
check: bench-smoke bench-analysis
	$(PYTHON) scripts/bench_check.py
