# Convenience targets; the package is never pip-installed, so every
# python invocation rides PYTHONPATH=src.

PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src

.PHONY: test bench bench-smoke check

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

# Full throughput benchmark; rewrites BENCH_campaign.json (~60 s).
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli bench

# ~30 s determinism smoke: tiny campaign, serial vs parallel hashes
# must match; never touches the tracked BENCH_campaign.json.
bench-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli bench --smoke

# The pre-merge gate: determinism smoke via the CLI, then the
# bench_check script (tier-1 suite + campaign smoke + parallel
# regression + the DNS fast-path gate, which fails if dns_us_per_call
# regresses >=25% against the committed BENCH_campaign.json).
check: bench-smoke
	$(PYTHON) scripts/bench_check.py
