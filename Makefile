# Convenience targets; the package is never pip-installed, so every
# python invocation rides PYTHONPATH=src.

PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src

.PHONY: test bench bench-smoke check

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

# Full throughput benchmark; rewrites BENCH_campaign.json (~60 s).
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli bench

# ~30 s determinism smoke: tiny campaign, serial vs parallel hashes
# must match; never touches the tracked BENCH_campaign.json.
bench-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli bench --smoke

# The pre-merge gate: tier-1 suite + determinism smoke + (multi-core)
# parallel-regression check.
check:
	$(PYTHON) scripts/bench_check.py
