#!/usr/bin/env python3
"""Public DNS vs cellular DNS (the paper's Sec 6).

Runs a small multi-carrier campaign and reproduces the three public-DNS
comparisons: resolver distance (Fig 11), resolution time (Fig 13), and
replica performance after /24 aggregation (Fig 14).

Run:  python examples/public_vs_cellular_dns.py [--days 45]
"""

import argparse

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.report import format_cdfs, format_table
from repro.core.study import SK_CARRIERS, US_CARRIERS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=45.0)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=2014)
    args = parser.parse_args()

    study = CellularDNSStudy(
        StudyConfig(
            seed=args.seed,
            device_scale=args.scale,
            duration_days=args.days,
            interval_hours=12.0,
        )
    )
    print(f"Simulating {len(study.campaign.devices)} devices over "
          f"{args.days:.0f} days...")
    print(f"Collected {len(study.dataset)} experiments.\n")

    carriers = (*US_CARRIERS, *SK_CARRIERS)

    for carrier in ("att", "skt"):
        curves = study.fig11_public_distance(carrier)
        print(format_cdfs(
            {
                "cell LDNS (external)": curves.get("local-external"),
                "GoogleDNS": curves.get("google"),
                "OpenDNS": curves.get("opendns"),
            },
            title=f"Fig 11 style [{carrier}]: resolver ping latency",
        ))
        print()

    for carrier in ("verizon", "lgu"):
        curves = study.fig13_public_resolution(carrier)
        print(format_cdfs(
            curves, title=f"Fig 13 style [{carrier}]: resolution time"
        ))
        print()

    rows = []
    for carrier in carriers:
        result = study.fig14_public_replicas(carrier)
        rows.append(
            (
                carrier,
                len(result.percent_changes),
                f"{result.fraction_equal() * 100:.0f}%",
                f"{result.fraction_public_not_worse() * 100:.0f}%",
            )
        )
    print(format_table(
        ["carrier", "comparisons", "equal replicas", "public equal-or-better"],
        rows,
        title="Fig 14 style: Google-chosen vs cellular-chosen replicas",
    ))
    print()
    print("The paper's punchline: despite the operator knowing where its")
    print("clients are, replicas chosen via public DNS perform equal or")
    print("better the large majority of the time.")


if __name__ == "__main__":
    main()
