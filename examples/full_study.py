#!/usr/bin/env python3
"""Run the complete study and emit every table and figure.

This is the paper in one command: build the world, run the campaign,
and print each reproduced artifact.  With ``--save`` the raw dataset is
archived as JSON lines for later re-analysis (the authors released
their dataset; this is ours).

Run:  python examples/full_study.py --scale 0.1 --days 60
      python examples/full_study.py --save dataset.jsonl
"""

import argparse

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.report import format_cdfs, format_table
from repro.core.study import SK_CARRIERS, US_CARRIERS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="fraction of the paper's 158-client population")
    parser.add_argument("--days", type=float, default=60.0)
    parser.add_argument("--interval-hours", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--save", metavar="PATH",
                        help="archive the dataset as JSON lines")
    args = parser.parse_args()

    study = CellularDNSStudy(
        StudyConfig(
            seed=args.seed,
            device_scale=args.scale,
            duration_days=args.days,
            interval_hours=args.interval_hours,
        )
    )
    print(f"Devices: {len(study.campaign.devices)}; "
          f"window: {args.days:.0f} days at {args.interval_hours:.0f}h cadence")
    dataset = study.dataset
    print(f"Experiments collected: {len(dataset)}\n")

    print(study.render_table1(), "\n")
    print(format_table(
        ["Domain", "CDN", "Edge name", "A TTL"],
        study.table2_domains(),
        title="Table 2: measured domains",
    ), "\n")
    print(study.render_table3(), "\n")

    rows = [
        (row.carrier, row.total, row.ping_responsive, row.traceroute_responsive)
        for row in study.table4_reachability()
    ]
    print(format_table(
        ["carrier", "resolvers", "ping ok", "traceroute ok"],
        rows, title="Table 4: external reachability",
    ), "\n")

    print(study.render_fig5(), "\n")
    print(format_cdfs(study.fig6_sk_resolution(),
                      title="Fig 6: DNS resolution time, SK carriers"), "\n")

    comparison = study.fig7_cache()
    print(format_cdfs(
        {"1st lookup": comparison.first, "2nd lookup": comparison.second},
        title=(f"Fig 7: back-to-back lookups "
               f"(miss rate {comparison.miss_rate() * 100:.0f}%)"),
    ), "\n")

    for carrier in (*US_CARRIERS, *SK_CARRIERS):
        differential = study.fig2_replica_differentials(carrier).ecdf()
        similarity = study.fig10_similarity(carrier)
        comparison14 = study.fig14_public_replicas(carrier)
        print(f"[{carrier}] Fig2 p50 +{differential.median:.0f}% | "
              f"Fig10 disjoint {similarity.fraction_disjoint() * 100:.0f}% "
              f"({len(similarity.different_prefix)} pairs) | "
              f"Fig14 public equal-or-better "
              f"{comparison14.fraction_public_not_worse() * 100:.0f}%")
    print()

    egress = study.egress_point_counts()
    print(format_table(
        ["carrier", "egress observed", "egress deployed"],
        [
            (key, egress[key].count if key in egress else 0,
             len(study.world.operators[key].egress_points))
            for key in (*US_CARRIERS, *SK_CARRIERS)
        ],
        title="Sec 5.2: egress points",
    ))

    if args.save:
        written = dataset.save(args.save)
        print(f"\nDataset archived: {written} experiments -> {args.save}")


if __name__ == "__main__":
    main()
