#!/usr/bin/env python3
"""Replica-selection study for one carrier (the paper's Sec 5).

Runs a scaled-down measurement campaign on a single carrier, then
reproduces the two replica-selection analyses:

* Fig 2 — how much worse than the best-seen replica clients' assigned
  replicas are (percent increase in mean TTFB);
* Fig 10 — cosine similarity of the replica sets handed to resolvers in
  the same /24 versus different /24s.

Run:  python examples/replica_selection_study.py --carrier tmobile
"""

import argparse

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--carrier", default="tmobile")
    parser.add_argument("--devices", type=int, default=6)
    parser.add_argument("--days", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=2014)
    args = parser.parse_args()

    config = StudyConfig(seed=args.seed, duration_days=args.days,
                         interval_hours=12.0)
    study = CellularDNSStudy(config)
    # Focus the campaign: only the chosen carrier gets devices.
    study.campaign.config.devices_per_carrier = None
    study.campaign.devices = [
        device
        for device in study.campaign.devices
        if device.carrier_key == args.carrier
    ][: args.devices]

    print(f"Running {len(study.campaign.devices)} devices on "
          f"{study.world.operators[args.carrier].display_name} "
          f"for {args.days:.0f} days...")
    dataset = study.dataset
    print(f"Collected {len(dataset)} experiments.\n")

    differentials = study.fig2_replica_differentials(args.carrier)
    ecdf = differentials.ecdf()
    if ecdf.is_empty:
        print("No replica differentials collected; increase --devices/--days.")
        return
    print(format_table(
        ["quantile", "latency increase over best replica"],
        [
            (f"p{int(q * 100)}", f"{ecdf.quantile(q):.0f}%")
            for q in (0.25, 0.50, 0.75, 0.90, 0.99)
        ],
        title="Fig 2 style: replica latency differentials",
    ))
    print(f"\nShare of replicas >=100% worse than best: "
          f"{ecdf.fraction_above(100.0) * 100:.0f}%\n")

    for domain in ("www.buzzfeed.com", "www.google.com"):
        similarity = study.fig10_similarity(args.carrier, domain=domain)
        print(f"Fig 10 style: replica-set similarity for {domain}")
        print(f"  same-/24 pairs: {len(similarity.same_prefix)}"
              f" (median similarity "
              f"{similarity.median_same_prefix():.2f})"
              if similarity.same_prefix else "  same-/24 pairs: none seen")
        if similarity.different_prefix:
            print(f"  different-/24 pairs: {len(similarity.different_prefix)}"
                  f" ({similarity.fraction_disjoint() * 100:.0f}% fully disjoint)")
        else:
            print("  different-/24 pairs: none seen")
        print()

    print("Interpretation: clients hopping between resolver /24s are handed")
    print("disjoint replica sets with large latency spreads — the paper's")
    print("case that cellular DNS is a poor client localizer.")


if __name__ == "__main__":
    main()
