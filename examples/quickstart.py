#!/usr/bin/env python3
"""Quickstart: one device, one experiment, every probe type.

Builds the simulated cellular Internet, attaches a single volunteer
device to Verizon's network in Seattle, runs the paper's experiment
script once (Sec 3.2), and prints what the measurement library saw:
DNS resolutions through three resolver kinds, replica probes, and the
resolver-identification trick that reveals the external-facing LDNS.

Run:  python examples/quickstart.py [--carrier att] [--city Chicago]
"""

import argparse

from repro import build_world
from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.geo.regions import cities_for, city_named
from repro.measure.experiment import ExperimentRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--carrier", default="verizon",
                        help="carrier key: att sprint tmobile verizon skt lgu")
    parser.add_argument("--city", default="Seattle", help="device home city")
    parser.add_argument("--seed", type=int, default=2014)
    args = parser.parse_args()

    world = build_world()
    operator = world.operators[args.carrier]
    home = city_named(args.city)
    device = MobileDevice(
        device_id="quickstart-device",
        carrier_key=args.carrier,
        mobility=MobilityModel(
            home_city=home,
            candidate_cities=cities_for(operator.country),
            seed=args.seed,
            device_key="quickstart-device",
            travel_probability=0.0,
        ),
    )

    record = ExperimentRunner(world).run(device, started_at=0.0, sequence=0)

    print(f"Experiment on {operator.display_name}, device in {home}")
    print(f"  active radio: {record.technology} ({record.generation})")
    print(f"  ephemeral client IP: {record.client_ip}")
    print()

    print("DNS resolutions (first attempts):")
    for resolution in record.resolutions:
        if resolution.attempt != 1:
            continue
        answers = ", ".join(resolution.addresses) or "(none)"
        print(
            f"  {resolution.domain:<22} via {resolution.resolver_kind:<8}"
            f" {resolution.resolution_ms:7.1f} ms -> {answers}"
        )
    print()

    print("Resolver identification (the Mao et al. whoami probe):")
    for identification in record.resolver_ids:
        print(
            f"  {identification.resolver_kind:<8}"
            f" configured {identification.configured_ip:<16}"
            f" observed external {identification.observed_external_ip}"
        )
    print()

    print("Replica probes:")
    for http in record.http_gets[:8]:
        ttfb = f"{http.ttfb_ms:.1f} ms" if http.ttfb_ms else "failed"
        print(f"  GET {http.domain:<22} @ {http.replica_ip:<16} TTFB {ttfb}")
    print()

    trace = next(
        t for t in record.traceroutes if t.target_kind == "egress-discovery"
    )
    print("Egress-discovery traceroute (note the tunnelled interior):")
    for ttl, ip, rtt in trace.hops:
        shown = ip or "*"
        timing = f"{rtt:.1f} ms" if rtt else ""
        print(f"  {ttl:>2}  {shown:<16} {timing}")


if __name__ == "__main__":
    main()
