#!/usr/bin/env python3
"""Resolver-churn timelines (the paper's Figs 8, 9 and 12).

Tracks one device per carrier over the campaign and renders an ASCII
version of the paper's enumeration plots: each row is an experiment,
each column value the index (by first appearance) of the external
resolver (or its /24) the device was mapped to at that time.

Run:  python examples/resolver_churn_timeline.py --carrier lgu
"""

import argparse

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.report import format_timeline
from repro.core.clock import format_day


def _render_timeline(title, series, width=72):
    left = format_day(series[0][0]) if series else ""
    right = format_day(series[-1][0]) if series else ""
    print(format_timeline(
        series, title=title, width=width, left_label=left, right_label=right,
    ))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--carrier", default="tmobile")
    parser.add_argument("--days", type=float, default=75.0)
    parser.add_argument("--seed", type=int, default=2014)
    args = parser.parse_args()

    study = CellularDNSStudy(
        StudyConfig(seed=args.seed, duration_days=args.days, interval_hours=12.0)
    )
    study.dataset
    devices = study.campaign.devices_of(args.carrier)
    timelines = [study.fig8_resolver_churn(d.device_id) for d in devices]
    timeline = max(timelines, key=lambda t: len(t.observations))
    device_id = timeline.device_id

    print(f"Device {device_id} on "
          f"{study.world.operators[args.carrier].display_name}: "
          f"{len(timeline.observations)} observations, "
          f"{timeline.unique_ips()} resolver IPs in "
          f"{timeline.unique_prefixes()} /24s\n")

    _render_timeline(
        "Fig 8 style (bottom): external resolver IP index over time",
        timeline.enumerated_ips(),
    )
    print()
    _render_timeline(
        "Fig 8 style (top): external resolver /24 index over time",
        timeline.enumerated_prefixes(),
    )
    print()

    static = study.fig9_static_timeline(device_id)
    print(f"Fig 9 style: filtered to the device's 10 km home cluster "
          f"({len(static.observations)} observations, "
          f"{static.unique_ips()} IPs) — churn persists while stationary.")
    print()

    google = study.fig12_google_churn(device_id)
    _render_timeline(
        "Fig 12 style: Google /24 cluster index over time "
        f"({google.unique_prefixes()} distinct clusters)",
        google.enumerated_prefixes(),
    )


if __name__ == "__main__":
    main()
