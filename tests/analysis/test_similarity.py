"""Cosine similarity and replica maps."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.similarity import (
    ReplicaMap,
    cosine_similarity,
    replica_prefix_map,
)

weight_maps = st.dictionaries(
    st.sampled_from([f"10.0.{i}.1" for i in range(8)]),
    st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=6,
)


class TestCosineSimilarity:
    def test_identical_maps_give_one(self):
        weights = {"a": 0.5, "b": 0.5}
        assert cosine_similarity(weights, weights) == pytest.approx(1.0)

    def test_disjoint_maps_give_zero(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_partial_overlap_between(self):
        value = cosine_similarity({"a": 1.0, "b": 1.0}, {"b": 1.0, "c": 1.0})
        assert 0.0 < value < 1.0

    def test_empty_maps_give_zero(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    def test_scale_invariant(self):
        a = {"x": 0.2, "y": 0.8}
        b = {"x": 2.0, "y": 8.0}
        assert cosine_similarity(a, b) == pytest.approx(1.0)

    @given(weight_maps, weight_maps)
    def test_range_and_symmetry(self, a, b):
        value = cosine_similarity(a, b)
        assert -1e-9 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(cosine_similarity(b, a))

    @given(weight_maps)
    def test_self_similarity_is_one(self, weights):
        assert cosine_similarity(weights, weights) == pytest.approx(1.0)


class TestReplicaMap:
    def test_ratios_normalised(self):
        replica_map = ReplicaMap(resolver_ip="10.0.0.1", domain="d")
        replica_map.observe("10.1.0.1")
        replica_map.observe("10.1.0.1")
        replica_map.observe("10.2.0.1")
        ratios = replica_map.ratios
        assert ratios["10.1.0.1"] == pytest.approx(2 / 3)
        assert sum(ratios.values()) == pytest.approx(1.0)
        assert replica_map.total_seen == 3

    def test_empty_ratios(self):
        replica_map = ReplicaMap(resolver_ip="10.0.0.1", domain="d")
        assert replica_map.ratios == {}


class TestPrefixAggregation:
    def test_aggregates_by_24(self):
        counts = {"10.1.0.1": 1, "10.1.0.2": 1, "10.2.0.1": 2}
        aggregated = replica_prefix_map(counts)
        assert aggregated["10.1.0.0/24"] == pytest.approx(0.5)
        assert aggregated["10.2.0.0/24"] == pytest.approx(0.5)
