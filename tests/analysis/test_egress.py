"""Egress-point identification (Sec 5.2) on crafted traceroutes."""

from repro.analysis.egress import (
    count_egress_points,
    egress_ip_of_traceroute,
    world_ownership_oracle,
)
from repro.measure.records import Dataset, ExperimentRecord, TracerouteRecord


def _owns(carrier, ip):
    return ip.startswith("10.")


class TestEgressRule:
    def test_previous_hop_of_first_external(self):
        hops = [
            [1, None, None],
            [2, "10.0.0.1", 5.0],
            [3, "10.0.0.9", 8.0],   # last in-network hop: the egress
            [4, "20.0.0.1", 12.0],  # first hop outside
            [5, "30.0.0.1", 20.0],
        ]
        assert egress_ip_of_traceroute("c", hops, _owns) == "10.0.0.9"

    def test_unresponsive_hops_skipped(self):
        hops = [
            [1, None, None],
            [2, "10.0.0.9", 8.0],
            [3, None, None],
            [4, "20.0.0.1", 12.0],
        ]
        assert egress_ip_of_traceroute("c", hops, _owns) == "10.0.0.9"

    def test_no_external_hop_means_no_egress(self):
        hops = [[1, "10.0.0.1", 1.0], [2, "10.0.0.2", 2.0]]
        assert egress_ip_of_traceroute("c", hops, _owns) is None

    def test_immediately_external_yields_none(self):
        hops = [[1, "20.0.0.1", 1.0]]
        assert egress_ip_of_traceroute("c", hops, _owns) is None


class TestCounting:
    def _dataset(self):
        dataset = Dataset()
        for index, egress in enumerate(["10.0.0.1", "10.0.0.2", "10.0.0.1"]):
            dataset.add(
                ExperimentRecord(
                    device_id=f"dev-{index}", carrier="att", country="US",
                    sequence=index, started_at=float(index),
                    latitude=0.0, longitude=0.0,
                    technology="LTE", generation="4G",
                    traceroutes=[
                        TracerouteRecord(
                            target_ip="30.0.0.1",
                            target_kind="egress-discovery",
                            hops=[[1, egress, 5.0], [2, "20.0.0.1", 10.0]],
                        )
                    ],
                )
            )
        return dataset

    def test_distinct_egress_counted(self):
        counts = count_egress_points(self._dataset(), _owns)
        assert counts["att"].count == 2
        assert counts["att"].traceroutes_used == 3

    def test_non_discovery_traceroutes_ignored(self):
        dataset = self._dataset()
        dataset.experiments[0].traceroutes[0].target_kind = "resolver"
        counts = count_egress_points(dataset, _owns)
        assert counts["att"].traceroutes_used == 2


class TestWorldOracle:
    def test_oracle_wraps_operator_ownership(self, world):
        owns = world_ownership_oracle(world)
        att_egress = world.operators["att"].egress_points[0].ip
        assert owns("att", att_egress)
        assert not owns("att", world.vantage.host.ip)
        assert not owns("nonexistent", att_egress)
