"""The hash-keyed result cache and the full-report regeneration suite."""

from __future__ import annotations

import pytest

from repro.analysis.result_cache import AnalysisResultCache
from repro.analysis.suite import REPORT_KEY, regenerate_report


class TestAnalysisResultCache:
    def test_in_memory_get_put(self):
        cache = AnalysisResultCache()
        assert cache.get("hash-a", "t1") is None
        cache.put("hash-a", "t1", "rendered")
        assert cache.get("hash-a", "t1") == "rendered"
        assert cache.get("hash-b", "t1") is None
        assert (cache.hits, cache.misses) == (1, 2)
        assert len(cache) == 1

    def test_get_or_render_renders_once(self):
        cache = AnalysisResultCache()
        calls = []

        def render():
            calls.append(1)
            return "body"

        assert cache.get_or_render("h", "k", render) == "body"
        assert cache.get_or_render("h", "k", render) == "body"
        assert len(calls) == 1

    def test_file_backed_roundtrip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = AnalysisResultCache(path)
        first.put("hash-a", REPORT_KEY, "the report\nwith ünïcode 中\n")
        first.save()
        second = AnalysisResultCache(path)
        assert second.get("hash-a", REPORT_KEY) == (
            "the report\nwith ünïcode 中\n"
        )

    def test_corrupt_store_degrades_to_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{definitely not json", encoding="utf-8")
        cache = AnalysisResultCache(str(path))
        assert len(cache) == 0
        assert cache.get("h", "k") is None
        # And a save() heals the file.
        cache.put("h", "k", "v")
        cache.save()
        assert AnalysisResultCache(str(path)).get("h", "k") == "v"

    def test_wrong_shape_store_degrades_to_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"entries": [1, 2, 3]}', encoding="utf-8")
        assert len(AnalysisResultCache(str(path))) == 0

    def test_in_memory_save_is_noop(self):
        AnalysisResultCache().save()  # must not raise

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            AnalysisResultCache(max_entries=0)

    def test_put_evicts_least_recently_used_hash(self):
        cache = AnalysisResultCache(max_entries=2)
        cache.put("hash-a", "k", "a")
        cache.put("hash-b", "k", "b")
        # Touch hash-a so hash-b becomes the LRU entry.
        assert cache.get("hash-a", "k") == "a"
        cache.put("hash-c", "k", "c")
        assert cache.get("hash-b", "k") is None
        assert cache.get("hash-a", "k") == "a"
        assert cache.get("hash-c", "k") == "c"
        assert len(cache) == 2

    def test_put_refreshes_recency_of_existing_hash(self):
        cache = AnalysisResultCache(max_entries=2)
        cache.put("hash-a", "k", "a")
        cache.put("hash-b", "k", "b")
        # Writing another artifact under hash-a makes hash-b the LRU.
        cache.put("hash-a", "k2", "a2")
        cache.put("hash-c", "k", "c")
        assert cache.get("hash-b", "k") is None
        assert cache.get("hash-a", "k") == "a"
        assert cache.get("hash-a", "k2") == "a2"

    def test_eviction_order_is_insertion_order_without_hits(self):
        cache = AnalysisResultCache(max_entries=3)
        for name in ("hash-a", "hash-b", "hash-c", "hash-d", "hash-e"):
            cache.put(name, "k", name)
        assert cache.get("hash-a", "k") is None
        assert cache.get("hash-b", "k") is None
        for name in ("hash-c", "hash-d", "hash-e"):
            assert cache.get(name, "k") == name

    def test_oversized_store_truncated_on_load(self, tmp_path):
        path = str(tmp_path / "cache.json")
        big = AnalysisResultCache(path, max_entries=10)
        for index in range(5):
            big.put(f"hash-{index}", "k", str(index))
        big.save()
        small = AnalysisResultCache(path, max_entries=2)
        assert len(small) == 2
        # Oldest stored hashes go first.
        assert small.get("hash-0", "k") is None
        assert small.get("hash-2", "k") is None
        assert small.get("hash-3", "k") == "3"
        assert small.get("hash-4", "k") == "4"


class TestRegenerateReport:
    @pytest.fixture(scope="class")
    def fused(self, study):
        return regenerate_report(study)

    def test_fused_matches_reference_bytes(self, study, fused):
        reference = regenerate_report(study, reference=True)
        assert fused.text == reference.text
        assert fused.dataset_hash == reference.dataset_hash

    def test_report_contains_every_artifact(self, fused):
        for marker in (
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
            "Fig 2", "Fig 3", "Fig 5", "Fig 6", "Fig 7", "Fig 8",
            "Fig 10", "Fig 11", "Fig 12", "Fig 13", "Fig 14",
            "Sec 5.2", "Sec 4.5",
        ):
            assert marker in fused.text, marker

    def test_regeneration_is_repeatable(self, study, fused):
        again = regenerate_report(study)
        assert again.text == fused.text
        assert not again.cached
        assert again.tables_s >= 0.0 and again.figures_s >= 0.0

    def test_cache_replay(self, study, fused):
        cache = AnalysisResultCache()
        first = regenerate_report(study, cache_store=cache)
        assert not first.cached
        replay = regenerate_report(study, cache_store=cache)
        assert replay.cached
        assert replay.text == first.text == fused.text
        assert cache.hits == 1

    def test_cache_never_holds_reference_renders(self, study):
        cache = AnalysisResultCache()
        regenerate_report(study, reference=True, cache_store=cache)
        assert len(cache) == 0

    def test_cache_persists_across_processes_shape(self, study, tmp_path):
        path = str(tmp_path / "analysis-cache.json")
        store = AnalysisResultCache(path)
        rendered = regenerate_report(study, cache_store=store)
        fresh = AnalysisResultCache(path)
        assert fresh.get(rendered.dataset_hash, REPORT_KEY) == rendered.text

    def test_study_method_delegates(self, study):
        result = study.regenerate_report()
        assert result.text.endswith("\n")
        assert len(result.dataset_hash) == 64
