"""Incremental ``ProjectionAccumulator`` vs the whole-dataset scan.

The pipelined campaign→report path folds every record into the analysis
aggregates as its line leaves the streaming merge.  These tests pin the
core contract: feeding records one at a time through
:meth:`ProjectionAccumulator.ingest` (or their serialized lines through
``ingest_line``) yields an engine whose state equals
``AnalysisEngine(dataset)`` — the original columnar scan, kept as the
reference oracle — slot for slot, over randomized interleavings of
fault records, metadata-only lines, NaN/inf floats and unicode
payloads.  A streaming-report golden at smoke scale pins the rendered
text (and the archived bytes) to the post-hoc path end to end.

Slot equality is compared through ``repr``: aggregate dicts embed NaN
samples and per-record sets, and both builds insert into any given
aggregate in the same record order, so equal reprs mean equal
structures *and* equal (render-load-bearing) insertion orders.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.engine import (
    AnalysisEngine,
    ProjectionAccumulator,
    StreamedDataset,
)
from repro.core.errors import DatasetError
from repro.measure.records import (
    OUTCOME_DELIVERED,
    OUTCOME_LOST,
    OUTCOME_TIMED_OUT,
    Dataset,
    ExperimentRecord,
    HttpRecord,
    PingRecord,
    ResolutionRecord,
    ResolverIdRecord,
    TracerouteRecord,
)

# -- randomized datasets ------------------------------------------------------

_CARRIERS = ["att", "skt", "zz-mystery", "ünïcarrier-中"]
_DOMAINS = [
    "m.yelp.com",
    "www.buzzfeed.com",
    "cdn.example.org",
    "whoami.akamai.net",  # whoami probe: excluded from latency figures
]
_KINDS = ["local", "google", "opendns"]
_IPS = ["16.0.7.1", "16.0.7.9", "16.1.8.3", "17.4.4.4", "18.0.0.9"]
_PING_KINDS = [
    "replica",
    "resolver-client-facing",
    "resolver-external-facing",
    "resolver-public-google",
    "resolver-public-opendns",
]
_TRACE_KINDS = ["replica", "egress-discovery", "resolver-external"]
_OUTCOMES = [None, OUTCOME_DELIVERED, OUTCOME_TIMED_OUT, OUTCOME_LOST]
# Latency values mix plain magnitudes with NaN/inf — the accumulator
# must carry them exactly as the columnar scan does.
_ms = st.floats(0.0, 5000.0, allow_nan=False) | st.sampled_from(
    [float("nan"), float("inf")]
)

_resolutions = st.builds(
    ResolutionRecord,
    domain=st.sampled_from(_DOMAINS),
    resolver_kind=st.sampled_from(_KINDS),
    resolution_ms=_ms,
    addresses=st.lists(st.sampled_from(_IPS), max_size=3),
    cname_chain=st.lists(st.sampled_from(["edge-a", "edge-b"]), max_size=1),
    attempt=st.sampled_from([1, 2]),
    outcome=st.sampled_from(_OUTCOMES),
    retries=st.integers(0, 3),
)
_pings = st.builds(
    PingRecord,
    target_ip=st.sampled_from(_IPS),
    target_kind=st.sampled_from(_PING_KINDS),
    rtt_ms=st.none() | _ms,
    outcome=st.sampled_from(_OUTCOMES),
    retries=st.integers(0, 3),
)
_traceroutes = st.builds(
    TracerouteRecord,
    target_ip=st.sampled_from(_IPS),
    target_kind=st.sampled_from(_TRACE_KINDS),
    hops=st.lists(
        st.tuples(
            st.integers(1, 4),
            st.none() | st.sampled_from(_IPS),
            st.none() | _ms,
        ).map(list),
        max_size=4,
    ),
    reached=st.booleans(),
    outcome=st.sampled_from(_OUTCOMES),
)
_http_gets = st.builds(
    HttpRecord,
    replica_ip=st.sampled_from(_IPS),
    domain=st.sampled_from(_DOMAINS[:3]),
    resolver_kind=st.sampled_from(_KINDS),
    ttfb_ms=st.none() | _ms,
    outcome=st.sampled_from(_OUTCOMES),
    retries=st.integers(0, 3),
)
_resolver_ids = st.builds(
    ResolverIdRecord,
    resolver_kind=st.sampled_from(_KINDS),
    configured_ip=st.sampled_from(_IPS),
    observed_external_ip=st.none() | st.sampled_from(_IPS + [""]),
    resolution_ms=st.none() | _ms,
)


@st.composite
def _datasets(draw):
    count = draw(st.integers(0, 6))
    records = []
    for index in range(count):
        records.append(
            ExperimentRecord(
                device_id=f"dev-{draw(st.integers(0, 2))}",
                carrier=draw(st.sampled_from(_CARRIERS)),
                country="US",
                sequence=index,
                started_at=float(index) * 1800.0,
                latitude=41.9 + draw(st.floats(-0.5, 0.5, allow_nan=False)),
                longitude=-87.6,
                technology=draw(st.sampled_from(["LTE", "eHRPD", "", "5G·중"])),
                generation="4G",
                client_ip=draw(st.sampled_from(_IPS)),
                resolutions=draw(st.lists(_resolutions, max_size=5)),
                pings=draw(st.lists(_pings, max_size=4)),
                traceroutes=draw(st.lists(_traceroutes, max_size=2)),
                http_gets=draw(st.lists(_http_gets, max_size=4)),
                resolver_ids=draw(st.lists(_resolver_ids, max_size=3)),
            )
        )
    return Dataset(experiments=records)


def assert_engines_equal(streamed: AnalysisEngine, scanned: AnalysisEngine):
    for slot in AnalysisEngine.__slots__:
        assert repr(getattr(streamed, slot)) == repr(
            getattr(scanned, slot)
        ), slot


@settings(max_examples=60, deadline=None)
@given(_datasets())
def test_incremental_fold_equals_full_scan(dataset):
    """ingest() record-by-record == the columnar whole-dataset scan."""
    accumulator = ProjectionAccumulator()
    for record in dataset.experiments:
        accumulator.ingest(record)
    assert accumulator.count == len(dataset.experiments)
    assert_engines_equal(accumulator.finalize(), AnalysisEngine(dataset))


@settings(max_examples=40, deadline=None)
@given(_datasets(), st.randoms(use_true_random=False))
def test_line_fold_equals_full_scan(dataset, rng):
    """ingest_line() over serialized records, with metadata/blank noise.

    The sharded streaming merge feeds the accumulator whole JSONL lines
    — including, at the file level, a metadata line and (tolerated)
    blank lines.  Interleaving those must not perturb the fold.
    """
    lines = [record.to_json_line() for record in dataset.experiments]
    noise = ['{"_metadata": {"experiments": 0}}', "", "   ", "\n"]
    for chaff in noise:
        lines.insert(rng.randint(0, len(lines)), chaff)
    accumulator = ProjectionAccumulator()
    for line in lines:
        accumulator.ingest_line(line)
    assert accumulator.count == len(dataset.experiments)
    assert_engines_equal(accumulator.finalize(), AnalysisEngine(dataset))


def test_empty_fold_equals_empty_scan():
    accumulator = ProjectionAccumulator()
    assert_engines_equal(
        accumulator.finalize(), AnalysisEngine(Dataset(experiments=[]))
    )


def test_ingest_line_rejects_malformed_json():
    with pytest.raises(DatasetError):
        ProjectionAccumulator().ingest_line('{"device_id": unterminated')


def test_unsorted_timelines_get_the_stable_time_sort():
    """finalize() mirrors by_device()'s conditional stable sort."""
    base = dict(
        device_id="dev-0", carrier="att", country="US", generation="4G",
        latitude=41.9, longitude=-87.6, technology="LTE",
        client_ip=_IPS[0],
    )
    records = [
        ExperimentRecord(sequence=0, started_at=3600.0, **base),
        ExperimentRecord(sequence=1, started_at=0.0, **base),
        ExperimentRecord(sequence=2, started_at=1800.0, **base),
    ]
    accumulator = ProjectionAccumulator()
    for record in records:
        accumulator.ingest(record)
    engine = accumulator.finalize()
    times = [row[0] for row in engine.device_obs["dev-0"]]
    assert times == [0.0, 1800.0, 3600.0]
    assert_engines_equal(engine, AnalysisEngine(Dataset(experiments=records)))


# -- streaming-report golden --------------------------------------------------


@pytest.fixture(scope="module")
def smoke_stream(tmp_path_factory):
    """One streamed smoke-scale campaign: (run_streaming result, engine,
    archive path)."""
    from repro import CellularDNSStudy, StudyConfig
    from repro.measure.bench import smoke_scale

    scale = smoke_scale()
    config = StudyConfig(
        seed=scale.seed,
        device_scale=scale.device_scale,
        duration_days=scale.duration_days,
        interval_hours=scale.interval_hours,
        executor="serial",
    )
    study = CellularDNSStudy(config)
    sink = ProjectionAccumulator()
    path = tmp_path_factory.mktemp("stream") / "campaign.jsonl"
    result = study.campaign.run_streaming(str(path), sink=sink)
    return config, result, sink.finalize(), path


class TestStreamingReportGolden:
    def test_archive_bytes_pinned(self, smoke_stream):
        from repro.measure.bench import SMOKE_DATASET_SHA256

        _, result, _, path = smoke_stream
        assert result["content_hash"] == SMOKE_DATASET_SHA256
        assert Dataset.load(str(path)).content_hash() == SMOKE_DATASET_SHA256

    def test_streamed_report_matches_posthoc(self, smoke_stream):
        from repro import CellularDNSStudy

        config, result, engine, path = smoke_stream
        streamed_study = CellularDNSStudy(config)
        streamed_study.use_dataset(
            StreamedDataset(
                engine,
                result["content_hash"],
                result["experiments"],
                metadata=result["metadata"],
            )
        )
        streamed = streamed_study.regenerate_report()

        posthoc_study = CellularDNSStudy(config)
        posthoc_study.use_dataset(Dataset.load(str(path)))
        posthoc = posthoc_study.regenerate_report()

        assert streamed.text == posthoc.text
        assert streamed.dataset_hash == posthoc.dataset_hash
        assert "Table 1" in streamed.text and "Fig 14" in streamed.text


# -- streamed dataset guard rails --------------------------------------------


def test_streamed_dataset_serves_engine_and_raises_on_records():
    accumulator = ProjectionAccumulator()
    accumulator.ingest(
        ExperimentRecord(
            device_id="dev-0", carrier="att", country="US", sequence=0,
            started_at=0.0, latitude=41.9, longitude=-87.6,
            technology="LTE", generation="4G", client_ip=_IPS[0],
        )
    )
    streamed = StreamedDataset(
        accumulator.finalize(), "f" * 64, 1, metadata={"experiments": 1}
    )
    assert streamed.content_hash() == "f" * 64
    assert len(streamed) == 1
    assert streamed.carriers() == ["att"]
    assert streamed.device_ids() == ["dev-0"]
    for poke in (
        lambda: list(streamed),
        streamed.by_carrier,
        streamed.by_device,
        streamed.columns,
    ):
        with pytest.raises(DatasetError):
            poke()
