"""Back-to-back cache analysis (Fig 7) on crafted data."""

import pytest

from repro.analysis.cache import cache_comparison, per_domain_miss_rates
from repro.measure.records import Dataset, ExperimentRecord, ResolutionRecord


def _experiment(pairs, carrier="att", device="dev-1", at=0.0):
    """pairs: {domain: (first_ms, second_ms)}"""
    resolutions = []
    for domain, (first, second) in pairs.items():
        resolutions.append(
            ResolutionRecord(domain=domain, resolver_kind="local",
                             resolution_ms=first, attempt=1)
        )
        resolutions.append(
            ResolutionRecord(domain=domain, resolver_kind="local",
                             resolution_ms=second, attempt=2)
        )
    return ExperimentRecord(
        device_id=device, carrier=carrier, country="US", sequence=int(at),
        started_at=at, latitude=0.0, longitude=0.0,
        technology="LTE", generation="4G", resolutions=resolutions,
    )


class TestCacheComparison:
    def test_miss_rate_counts_large_deltas(self):
        dataset = Dataset()
        dataset.add(_experiment({"a.com": (200.0, 50.0), "b.com": (52.0, 50.0)}))
        comparison = cache_comparison(dataset)
        assert comparison.miss_rate(threshold_ms=15.0) == pytest.approx(0.5)

    def test_all_hits(self):
        dataset = Dataset()
        dataset.add(_experiment({"a.com": (50.0, 49.0)}))
        assert cache_comparison(dataset).miss_rate() == 0.0

    def test_distributions_populated(self):
        dataset = Dataset()
        dataset.add(_experiment({"a.com": (200.0, 50.0)}))
        comparison = cache_comparison(dataset)
        assert comparison.first.median == 200.0
        assert comparison.second.median == 50.0

    def test_carrier_filter(self):
        dataset = Dataset()
        dataset.add(_experiment({"a.com": (200.0, 50.0)}, carrier="att"))
        dataset.add(_experiment({"a.com": (50.0, 50.0)}, carrier="skt"))
        only_att = cache_comparison(dataset, carriers=["att"])
        assert only_att.miss_rate() == 1.0

    def test_empty_dataset(self):
        comparison = cache_comparison(Dataset())
        assert comparison.miss_rate() == 0.0
        assert comparison.first.is_empty


class TestPerDomainMissRates:
    def test_rates_by_domain(self):
        dataset = Dataset()
        dataset.add(_experiment({"hot.com": (50.0, 49.0), "cold.com": (300.0, 50.0)}))
        dataset.add(_experiment({"hot.com": (51.0, 50.0), "cold.com": (280.0, 45.0)}, at=1.0))
        rates = dict(per_domain_miss_rates(dataset))
        assert rates["hot.com"] == 0.0
        assert rates["cold.com"] == 1.0
