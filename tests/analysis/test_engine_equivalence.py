"""Fused single-pass engine vs the original per-function record walks.

Every analysis primitive rewired onto :mod:`repro.analysis.engine` keeps
its original implementation alive as a ``*_reference`` oracle.  These
tests assert the two produce *equal structures* — on the session-scale
campaign fixture and on hypothesis-randomised datasets whose records mix
carriers, resolver kinds, whoami probes, missing pings and unpaired
cache attempts.

ECDF equality is compared through its sorted-sample list (``ECDF``
holds a numpy array, whose ``==`` is elementwise), so everything is
normalised into plain tuples first — see :func:`norm`.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    cache,
    consistency,
    latency,
    localization,
    longitudinal,
    reachability,
    similarity,
)
from repro.analysis.egress import (
    count_egress_points,
    count_egress_points_reference,
)
from repro.analysis.stats import ECDF
from repro.analysis.suite import _FUSED, _REFERENCE
from repro.geo.coordinates import GeoPoint
from repro.measure.records import (
    Dataset,
    ExperimentRecord,
    HttpRecord,
    PingRecord,
    ResolutionRecord,
    ResolverIdRecord,
    TracerouteRecord,
)


def norm(x):
    """Recursively reduce any analysis result to comparable plain data.

    ECDFs become their sorted sample, dataclasses their public field
    tuples, dicts keep insertion order (the renderings depend on it),
    NaN becomes a token so equal-NaN structures compare equal.
    """
    if isinstance(x, ECDF):
        return ("ECDF", tuple(x._data))
    if isinstance(x, np.ndarray):
        return ("ndarray", tuple(norm(v) for v in x.tolist()))
    if isinstance(x, float):
        return "nan" if x != x else x
    if isinstance(x, dict):
        return (
            "dict",
            tuple((norm(k), norm(v)) for k, v in x.items()),
        )
    if isinstance(x, (list, tuple)):
        return tuple(norm(v) for v in x)
    if isinstance(x, (set, frozenset)):
        return ("set", tuple(sorted((norm(v) for v in x), key=repr)))
    if dataclasses.is_dataclass(x) and not isinstance(x, type):
        return (
            type(x).__name__,
            tuple(
                (f.name, norm(getattr(x, f.name)))
                for f in dataclasses.fields(x)
                if not f.name.startswith("_")
            ),
        )
    return x


def assert_same(fused, reference, label=""):
    assert norm(fused) == norm(reference), label


# -- randomised datasets ------------------------------------------------------

_CARRIERS = ["att", "skt", "zz-mystery"]
_DOMAINS = [
    "m.yelp.com",
    "www.buzzfeed.com",
    "cdn.example.org",
    "whoami.akamai.net",  # excluded from latency figures by both paths
]
_KINDS = ["local", "google", "opendns"]
_IPS = ["16.0.7.1", "16.0.7.9", "16.1.8.3", "17.4.4.4", "18.0.0.9"]
_PING_KINDS = [
    "replica",
    "resolver-client-facing",
    "resolver-external-facing",
    "resolver-public-google",
    "resolver-public-opendns",
]
_ms = st.floats(0.0, 5000.0, allow_nan=False)

_resolutions = st.builds(
    ResolutionRecord,
    domain=st.sampled_from(_DOMAINS),
    resolver_kind=st.sampled_from(_KINDS),
    resolution_ms=_ms,
    addresses=st.lists(st.sampled_from(_IPS), max_size=3),
    cname_chain=st.lists(st.sampled_from(["edge-a", "edge-b"]), max_size=1),
    attempt=st.sampled_from([1, 2]),
)
_pings = st.builds(
    PingRecord,
    target_ip=st.sampled_from(_IPS),
    target_kind=st.sampled_from(_PING_KINDS),
    rtt_ms=st.none() | _ms,
)
_traceroutes = st.builds(
    TracerouteRecord,
    target_ip=st.sampled_from(_IPS),
    target_kind=st.sampled_from(["replica", "resolver-external"]),
    hops=st.lists(
        st.tuples(
            st.integers(1, 4),
            st.none() | st.sampled_from(_IPS),
            st.none() | _ms,
        ).map(list),
        max_size=4,
    ),
    reached=st.booleans(),
)
_http_gets = st.builds(
    HttpRecord,
    replica_ip=st.sampled_from(_IPS),
    domain=st.sampled_from(_DOMAINS[:3]),
    resolver_kind=st.sampled_from(_KINDS),
    ttfb_ms=st.none() | _ms,
)
_resolver_ids = st.builds(
    ResolverIdRecord,
    resolver_kind=st.sampled_from(_KINDS),
    configured_ip=st.sampled_from(_IPS),
    observed_external_ip=st.none() | st.sampled_from(_IPS + [""]),
    resolution_ms=st.none() | _ms,
)


@st.composite
def _datasets(draw):
    count = draw(st.integers(0, 6))
    records = []
    for index in range(count):
        records.append(
            ExperimentRecord(
                device_id=f"dev-{draw(st.integers(0, 2))}",
                carrier=draw(st.sampled_from(_CARRIERS)),
                country="US",
                sequence=index,
                started_at=float(index) * 1800.0,
                latitude=41.9 + draw(st.floats(-0.5, 0.5, allow_nan=False)),
                longitude=-87.6,
                technology=draw(st.sampled_from(["LTE", "eHRPD", ""])),
                generation="4G",
                client_ip=draw(st.sampled_from(_IPS)),
                resolutions=draw(st.lists(_resolutions, max_size=5)),
                pings=draw(st.lists(_pings, max_size=4)),
                traceroutes=draw(st.lists(_traceroutes, max_size=2)),
                http_gets=draw(st.lists(_http_gets, max_size=4)),
                resolver_ids=draw(st.lists(_resolver_ids, max_size=3)),
            )
        )
    return Dataset(experiments=records)


def _owns(carrier, address):
    return address.startswith(("16.", "17."))


@settings(max_examples=40, deadline=None)
@given(_datasets())
def test_randomised_datasets_equivalent(dataset):
    """Every rewired primitive against its oracle on arbitrary records."""
    for carrier in _CARRIERS:
        for kind in _KINDS:
            for attempt in (1, 2, None):
                assert_same(
                    latency.resolution_times(dataset, carrier, kind, attempt),
                    latency.resolution_times_reference(
                        dataset, carrier, kind, attempt
                    ),
                    f"resolution_times {carrier}/{kind}/{attempt}",
                )
        assert_same(
            latency.resolution_times_by_technology(dataset, carrier),
            latency.resolution_times_by_technology_reference(dataset, carrier),
            f"by_technology {carrier}",
        )
        assert_same(
            latency.resolution_times_by_kind(dataset, carrier),
            latency.resolution_times_by_kind_reference(dataset, carrier),
            f"by_kind {carrier}",
        )
        assert_same(
            latency.resolver_ping_latencies(dataset, carrier),
            latency.resolver_ping_latencies_reference(dataset, carrier),
            f"pings {carrier}",
        )
        assert_same(
            latency.public_resolver_pings(dataset, carrier),
            latency.public_resolver_pings_reference(dataset, carrier),
            f"public pings {carrier}",
        )
        assert_same(
            localization.replica_differentials(dataset, carrier),
            localization.replica_differentials_reference(dataset, carrier),
            f"replica_differentials {carrier}",
        )
        assert_same(
            localization.replica_differentials(
                dataset, carrier, domain="m.yelp.com", resolver_kind="local"
            ),
            localization.replica_differentials_reference(
                dataset, carrier, domain="m.yelp.com", resolver_kind="local"
            ),
            f"replica_differentials filtered {carrier}",
        )
        assert_same(
            localization.public_replica_comparison(dataset, carrier),
            localization.public_replica_comparison_reference(dataset, carrier),
            f"public_replica_comparison {carrier}",
        )
        assert_same(
            similarity.similarity_study(
                dataset, "www.buzzfeed.com", carrier, min_observations=1
            ),
            similarity.similarity_study_reference(
                dataset, "www.buzzfeed.com", carrier, min_observations=1
            ),
            f"similarity {carrier}",
        )
        assert_same(
            longitudinal.resolver_discovery_curve(dataset, carrier),
            longitudinal.resolver_discovery_curve_reference(dataset, carrier),
            f"discovery {carrier}",
        )
    assert_same(
        cache.cache_comparison(dataset, carriers=_CARRIERS[:2]),
        cache.cache_comparison_reference(dataset, carriers=_CARRIERS[:2]),
        "cache_comparison",
    )
    assert_same(
        cache.per_domain_miss_rates(dataset),
        cache.per_domain_miss_rates_reference(dataset),
        "per_domain_miss_rates",
    )
    assert_same(
        consistency.ldns_pair_table(dataset),
        consistency.ldns_pair_table_reference(dataset),
        "ldns_pair_table",
    )
    assert_same(
        consistency.unique_resolver_counts(dataset),
        consistency.unique_resolver_counts_reference(dataset),
        "unique_resolver_counts",
    )
    centroid = GeoPoint(latitude=41.9, longitude=-87.6)
    for device_id in dataset.device_ids():
        for kind in ("local", "google"):
            assert_same(
                consistency.resolver_timeline(dataset, device_id, kind),
                consistency.resolver_timeline_reference(
                    dataset, device_id, kind
                ),
                f"timeline {device_id}/{kind}",
            )
        assert_same(
            consistency.resolver_timeline(
                dataset, device_id, within_km_of=centroid, radius_km=30.0
            ),
            consistency.resolver_timeline_reference(
                dataset, device_id, within_km_of=centroid, radius_km=30.0
            ),
            f"timeline geo {device_id}",
        )
    assert_same(
        count_egress_points(dataset, _owns),
        count_egress_points_reference(dataset, _owns),
        "count_egress_points",
    )
    assert_same(
        reachability.observed_external_resolvers(dataset),
        reachability.observed_external_resolvers_reference(dataset),
        "observed_external_resolvers",
    )


@settings(max_examples=25, deadline=None)
@given(_datasets())
def test_replica_maps_preserve_order(dataset):
    """Fig 10's per-resolver maps must match in values *and* order."""
    for carrier in _CARRIERS:
        fused = similarity.replica_maps_by_resolver(
            dataset, "www.buzzfeed.com", carrier
        )
        reference = similarity.replica_maps_by_resolver_reference(
            dataset, "www.buzzfeed.com", carrier
        )
        assert list(fused) == list(reference)
        assert norm(fused) == norm(reference)


def test_mutation_invalidates_engine():
    """Appending records must rebuild the fused projections."""
    dataset = Dataset()
    record = ExperimentRecord(
        device_id="dev-0", carrier="att", country="US", sequence=0,
        started_at=0.0, latitude=41.9, longitude=-87.6, technology="LTE",
        generation="4G", client_ip="16.2.0.9",
        resolutions=[
            ResolutionRecord(
                domain="m.yelp.com", resolver_kind="local",
                resolution_ms=42.0, addresses=["16.0.7.1"],
                cname_chain=[], attempt=1,
            )
        ],
        pings=[], traceroutes=[], http_gets=[], resolver_ids=[],
    )
    dataset.add(record)
    before = latency.resolution_times(dataset, "att")
    assert len(before) == 1
    second = dataclasses.replace(
        record,
        sequence=1,
        resolutions=[
            dataclasses.replace(record.resolutions[0], resolution_ms=99.0)
        ],
    )
    dataset.add(second)
    after = latency.resolution_times(dataset, "att")
    assert len(after) == 2
    assert_same(
        after, latency.resolution_times_reference(dataset, "att"), "post-add"
    )


class TestSessionScaleEquivalence:
    """Spot checks on the realistic session campaign (~1700 experiments)."""

    def test_every_suite_primitive(self, study, dataset):
        carriers = list(study.world.operators)
        spot_devices = dataset.device_ids()[:3]
        for name, fused_fn in _FUSED.items():
            reference_fn = _REFERENCE[name]
            if name == "resolver_timeline":
                for device_id in spot_devices:
                    assert_same(
                        fused_fn(dataset, device_id),
                        reference_fn(dataset, device_id),
                        name,
                    )
            elif name == "count_egress_points":
                from repro.analysis.egress import world_ownership_oracle

                owns = world_ownership_oracle(study.world)
                assert_same(
                    fused_fn(dataset, owns), reference_fn(dataset, owns), name
                )
            elif name == "similarity_study":
                for carrier in carriers[:2]:
                    assert_same(
                        fused_fn(dataset, "www.buzzfeed.com", carrier),
                        reference_fn(dataset, "www.buzzfeed.com", carrier),
                        name,
                    )
            elif name == "cache_comparison":
                assert_same(
                    fused_fn(dataset, carriers),
                    reference_fn(dataset, carriers),
                    name,
                )
            elif name in ("per_domain_miss_rates", "ldns_pair_table",
                          "unique_resolver_counts",
                          "observed_external_resolvers",
                          "failure_accounting"):
                assert_same(fused_fn(dataset), reference_fn(dataset), name)
            else:  # per-carrier primitives
                for carrier in carriers:
                    assert_same(
                        fused_fn(dataset, carrier),
                        reference_fn(dataset, carrier),
                        f"{name} {carrier}",
                    )

    def test_query_cache_returns_same_object(self, dataset):
        first = latency.resolution_times(dataset, "att")
        second = latency.resolution_times(dataset, "att")
        assert first is second
