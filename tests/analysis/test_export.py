"""CSV export of figure series."""

import csv

from repro.analysis.export import (
    export_cdf,
    export_cdf_family,
    export_rows,
    export_timeline,
)
from repro.analysis.consistency import ResolverTimeline
from repro.analysis.stats import ECDF


def _read(path):
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.reader(handle))


class TestExportCdf:
    def test_single_cdf(self, tmp_path):
        path = tmp_path / "cdf.csv"
        rows = export_cdf(ECDF.from_values(range(100)), str(path), points=11)
        data = _read(path)
        assert data[0] == ["value", "cdf"]
        assert len(data) == rows + 1
        # Monotone in both columns.
        xs = [float(row[0]) for row in data[1:]]
        ys = [float(row[1]) for row in data[1:]]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_empty_cdf_writes_header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        rows = export_cdf(ECDF.from_values([]), str(path))
        assert rows == 0
        assert _read(path) == [["value", "cdf"]]

    def test_family(self, tmp_path):
        path = tmp_path / "family.csv"
        curves = {
            "a": ECDF.from_values([1.0, 2.0]),
            "b": ECDF.from_values([3.0]),
            "empty": ECDF.from_values([]),
            "none": None,
        }
        export_cdf_family(curves, str(path), points=5)
        data = _read(path)
        series = {row[0] for row in data[1:]}
        assert series == {"a", "b"}


class TestExportTimeline:
    def test_timeline_rows(self, tmp_path):
        timeline = ResolverTimeline(
            device_id="d", carrier="att", resolver_kind="local",
            observations=[(0.0, "10.0.0.1"), (60.0, "10.0.1.1"),
                          (120.0, "10.0.0.1")],
        )
        path = tmp_path / "timeline.csv"
        export_timeline(timeline, str(path))
        data = _read(path)
        assert [row[1] for row in data[1:]] == ["1", "2", "1"]

    def test_prefix_mode(self, tmp_path):
        timeline = ResolverTimeline(
            device_id="d", carrier="att", resolver_kind="local",
            observations=[(0.0, "10.0.0.1"), (60.0, "10.0.0.200")],
        )
        path = tmp_path / "timeline24.csv"
        export_timeline(timeline, str(path), by_prefix=True)
        data = _read(path)
        assert [row[1] for row in data[1:]] == ["1", "1"]


class TestExportRows:
    def test_table(self, tmp_path):
        path = tmp_path / "table.csv"
        count = export_rows(["a", "b"], [(1, 2), (3, 4)], str(path))
        assert count == 2
        assert _read(path) == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "table.csv"
        export_rows(["a"], [(1,)], str(path))
        assert path.exists()


class TestExportStudyFigures:
    def test_full_export(self, study, tmp_path):
        from repro.analysis.export import export_study_figures

        paths = export_study_figures(study, str(tmp_path / "figures"))
        assert len(paths) > 30
        for path in paths:
            rows = _read(path)
            assert rows, path  # at least a header everywhere
