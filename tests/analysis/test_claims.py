"""The machine-checkable claim list."""

from repro.analysis.claims import (
    Claim,
    PAPER_CLAIMS,
    render_verification,
    verify_claims,
)


class TestClaimList:
    def test_seventeen_claims(self):
        assert len(PAPER_CLAIMS) == 17

    def test_unique_ids(self):
        ids = [claim.claim_id for claim in PAPER_CLAIMS]
        assert len(set(ids)) == len(ids)

    def test_every_artifact_covered(self):
        artifacts = {claim.artifact for claim in PAPER_CLAIMS}
        for expected in ("Fig 2", "Fig 7", "Fig 10", "Fig 14",
                         "Table 3", "Table 4", "Table 5", "Sec 5.2"):
            assert expected in artifacts


class TestVerification:
    def test_all_claims_pass_on_session_study(self, study):
        results = verify_claims(study)
        failures = [str(result) for result in results if not result.passed]
        assert not failures, "\n".join(failures)

    def test_render_includes_summary(self, study):
        results = verify_claims(study)
        text = render_verification(results)
        assert f"{len(results)}/{len(results)} claims reproduced" in text
        assert "C1" in text

    def test_broken_check_reports_failure(self, study):
        def exploding(_):
            raise RuntimeError("boom")

        claim = Claim("CX", "Fig X", "never true", exploding)
        results = verify_claims(study, claims=[claim])
        assert not results[0].passed
        assert "boom" in results[0].evidence
