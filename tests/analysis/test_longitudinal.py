"""Longitudinal analyses: inventories, changes, discovery curves."""

import pytest

from repro.analysis.egress import world_ownership_oracle
from repro.analysis.longitudinal import (
    DiscoveryCurve,
    configuration_changes,
    egress_discovery_curve,
    resolver_discovery_curve,
    resolver_inventory_over_time,
)
from repro.core.clock import SECONDS_PER_DAY
from repro.measure.records import Dataset, ExperimentRecord, ResolverIdRecord


def _record(at, external, device="dev-1", carrier="c", configured="10.0.0.1"):
    return ExperimentRecord(
        device_id=device, carrier=carrier, country="US",
        sequence=int(at), started_at=at, latitude=0.0, longitude=0.0,
        technology="LTE", generation="4G",
        resolver_ids=[
            ResolverIdRecord(
                resolver_kind="local",
                configured_ip=configured,
                observed_external_ip=external,
            )
        ],
    )


class TestInventories:
    def test_windows_partition_time(self):
        dataset = Dataset()
        dataset.add(_record(0.0, "10.1.0.1"))
        dataset.add(_record(20 * SECONDS_PER_DAY, "10.2.0.1"))
        inventories = resolver_inventory_over_time(dataset, "c", window_days=14)
        assert len(inventories) == 2
        assert inventories[0].external_prefixes == {"10.1.0.0/24"}
        assert inventories[1].external_prefixes == {"10.2.0.0/24"}

    def test_consistency_per_window(self):
        dataset = Dataset()
        for t in range(10):
            dataset.add(_record(float(t), "10.1.0.1"))
        inventories = resolver_inventory_over_time(dataset, "c")
        assert inventories[0].consistency_pct == pytest.approx(100.0)

    def test_carrier_scoped(self):
        dataset = Dataset()
        dataset.add(_record(0.0, "10.1.0.1", carrier="other"))
        assert resolver_inventory_over_time(dataset, "c") == []


class TestChanges:
    def test_stable_estate_no_changes(self):
        dataset = Dataset()
        for day in range(0, 60, 10):
            dataset.add(_record(day * SECONDS_PER_DAY, "10.1.0.1"))
        inventories = resolver_inventory_over_time(dataset, "c")
        assert configuration_changes(inventories) == []

    def test_prefix_shift_detected(self):
        dataset = Dataset()
        dataset.add(_record(0.0, "10.1.0.1"))
        dataset.add(_record(20 * SECONDS_PER_DAY, "10.2.0.1"))
        inventories = resolver_inventory_over_time(dataset, "c", window_days=14)
        changes = configuration_changes(inventories)
        assert len(changes) == 1
        assert "+1/-1" in changes[0][1]


class TestDiscoveryCurves:
    def test_steps_monotone(self):
        dataset = Dataset()
        for t, ip in enumerate(["a", "b", "a", "c"]):
            dataset.add(_record(float(t), f"10.1.{ord(ip)}.1"))
        curve = resolver_discovery_curve(dataset, "c")
        counts = [count for _, count in curve.steps]
        assert counts == [1, 2, 3]
        assert curve.total == 3

    def test_count_at(self):
        curve = DiscoveryCurve(carrier="c", what="x",
                               steps=[(0.0, 1), (10.0, 2), (20.0, 3)])
        assert curve.count_at(-1.0) == 0
        assert curve.count_at(15.0) == 2
        assert curve.count_at(100.0) == 3

    def test_time_to_fraction(self):
        curve = DiscoveryCurve(carrier="c", what="x",
                               steps=[(0.0, 1), (10.0, 2), (20.0, 4)])
        assert curve.time_to_fraction(0.5) == 10.0
        assert curve.time_to_fraction(1.0) == 20.0
        assert DiscoveryCurve("c", "x").time_to_fraction(0.5) is None


class TestOnRealCampaign:
    def test_tmobile_keeps_discovering(self, study, dataset):
        """Churny carriers discover resolvers throughout the campaign."""
        curve = resolver_discovery_curve(dataset, "tmobile")
        assert curve.total > 10
        halfway = curve.time_to_fraction(0.5)
        full = curve.time_to_fraction(1.0)
        assert halfway is not None and full is not None
        assert full > halfway

    def test_egress_curve_bounded_by_deployment(self, study, dataset):
        owns = world_ownership_oracle(study.world)
        curve = egress_discovery_curve(dataset, "verizon", owns)
        deployed = len(study.world.operators["verizon"].egress_points)
        assert 0 < curve.total <= deployed

    def test_verizon_configuration_stable(self, study, dataset):
        inventories = resolver_inventory_over_time(dataset, "verizon")
        # Tiered fixed pairs: the /24 estate barely moves across windows.
        changes = configuration_changes(inventories)
        assert len(changes) <= len(inventories)
