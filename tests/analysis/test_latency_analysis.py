"""Latency extraction helpers on crafted data."""

import pytest

from repro.analysis.latency import (
    carriers_in,
    median_gap_ms,
    public_resolver_pings,
    resolution_times,
    resolution_times_by_kind,
    resolution_times_by_technology,
    resolver_ping_latencies,
)
from repro.analysis.stats import ECDF
from repro.measure.records import (
    Dataset,
    ExperimentRecord,
    PingRecord,
    ResolutionRecord,
)


def _experiment(
    carrier="att",
    country="US",
    technology="LTE",
    resolutions=(),
    pings=(),
    at=0.0,
):
    return ExperimentRecord(
        device_id="dev-1", carrier=carrier, country=country, sequence=int(at),
        started_at=at, latitude=0.0, longitude=0.0,
        technology=technology, generation="4G",
        resolutions=list(resolutions), pings=list(pings),
    )


def _resolution(domain="a.com", kind="local", ms=50.0, attempt=1):
    return ResolutionRecord(
        domain=domain, resolver_kind=kind, resolution_ms=ms, attempt=attempt
    )


class TestResolutionTimes:
    def test_first_attempts_only_by_default(self):
        dataset = Dataset()
        dataset.add(
            _experiment(
                resolutions=[
                    _resolution(ms=100.0, attempt=1),
                    _resolution(ms=10.0, attempt=2),
                ]
            )
        )
        ecdf = resolution_times(dataset, "att")
        assert len(ecdf) == 1
        assert ecdf.median == 100.0

    def test_attempt_none_includes_all(self):
        dataset = Dataset()
        dataset.add(
            _experiment(
                resolutions=[
                    _resolution(ms=100.0, attempt=1),
                    _resolution(ms=10.0, attempt=2),
                ]
            )
        )
        assert len(resolution_times(dataset, "att", attempt=None)) == 2

    def test_carrier_scoped(self):
        dataset = Dataset()
        dataset.add(_experiment(carrier="att", resolutions=[_resolution()]))
        dataset.add(_experiment(carrier="skt", resolutions=[_resolution(ms=99.0)]))
        assert resolution_times(dataset, "skt").median == 99.0

    def test_by_technology_buckets(self):
        dataset = Dataset()
        dataset.add(
            _experiment(technology="LTE", resolutions=[_resolution(ms=40.0)])
        )
        dataset.add(
            _experiment(technology="EDGE", resolutions=[_resolution(ms=500.0)], at=1)
        )
        curves = resolution_times_by_technology(dataset, "att")
        assert set(curves) == {"LTE", "EDGE"}
        assert curves["EDGE"].median > curves["LTE"].median

    def test_by_kind(self):
        dataset = Dataset()
        dataset.add(
            _experiment(
                resolutions=[
                    _resolution(kind="local", ms=40.0),
                    _resolution(kind="google", ms=60.0),
                    _resolution(kind="opendns", ms=70.0),
                ]
            )
        )
        curves = resolution_times_by_kind(dataset, "att")
        assert curves["local"].median < curves["google"].median


class TestResolverPings:
    def test_client_vs_external(self):
        dataset = Dataset()
        dataset.add(
            _experiment(
                pings=[
                    PingRecord("10.0.0.1", "resolver-client-facing", 30.0),
                    PingRecord("10.1.0.1", "resolver-external-facing", 55.0),
                    PingRecord("10.1.0.2", "resolver-external-facing", None),
                ]
            )
        )
        curves = resolver_ping_latencies(dataset, "att")
        assert curves["client"].median == 30.0
        assert curves["external"].median == 55.0

    def test_silent_tier_absent(self):
        dataset = Dataset()
        dataset.add(
            _experiment(
                pings=[PingRecord("10.0.0.1", "resolver-client-facing", 30.0)]
            )
        )
        curves = resolver_ping_latencies(dataset, "att")
        assert "external" not in curves

    def test_public_pings(self):
        dataset = Dataset()
        dataset.add(
            _experiment(
                pings=[
                    PingRecord("8.8.8.8", "resolver-public-google", 60.0),
                    PingRecord("208.67.222.222", "resolver-public-opendns", 65.0),
                    PingRecord("10.1.0.1", "resolver-external-facing", 45.0),
                ]
            )
        )
        curves = public_resolver_pings(dataset, "att")
        assert curves["google"].median == 60.0
        assert curves["opendns"].median == 65.0
        assert curves["local-external"].median == 45.0


class TestHelpers:
    def test_median_gap(self):
        first = ECDF.from_values([10.0, 20.0, 30.0])
        second = ECDF.from_values([15.0, 25.0, 35.0])
        assert median_gap_ms(first, second) == pytest.approx(5.0)
        assert median_gap_ms(first, None) is None
        assert median_gap_ms(first, ECDF.from_values([])) is None

    def test_carriers_in(self):
        dataset = Dataset()
        dataset.add(_experiment(carrier="att", country="US"))
        dataset.add(_experiment(carrier="skt", country="KR"))
        assert carriers_in(dataset) == ["att", "skt"]
        assert carriers_in(dataset, country="KR") == ["skt"]
