"""LDNS pairing consistency and resolver timelines on crafted data."""

import pytest

from repro.analysis.consistency import (
    device_location_centroid,
    ldns_pair_table,
    resolver_timeline,
    unique_resolver_counts,
)
from repro.geo.coordinates import GeoPoint
from repro.measure.records import (
    Dataset,
    ExperimentRecord,
    ResolverIdRecord,
)


def _experiment(
    device="dev-1",
    carrier="carrier-a",
    at=0.0,
    configured="10.0.0.1",
    external="10.1.0.1",
    google_external=None,
    latitude=41.88,
    longitude=-87.63,
):
    resolver_ids = [
        ResolverIdRecord(
            resolver_kind="local",
            configured_ip=configured,
            observed_external_ip=external,
        )
    ]
    if google_external:
        resolver_ids.append(
            ResolverIdRecord(
                resolver_kind="google",
                configured_ip="8.8.8.8",
                observed_external_ip=google_external,
            )
        )
    return ExperimentRecord(
        device_id=device,
        carrier=carrier,
        country="US",
        sequence=int(at),
        started_at=at,
        latitude=latitude,
        longitude=longitude,
        technology="LTE",
        generation="4G",
        resolver_ids=resolver_ids,
    )


class TestLdnsPairTable:
    def test_perfectly_consistent(self):
        dataset = Dataset()
        for t in range(10):
            dataset.add(_experiment(at=float(t)))
        rows = ldns_pair_table(dataset)
        assert len(rows) == 1
        assert rows[0].client_addresses == 1
        assert rows[0].external_addresses == 1
        assert rows[0].consistency_pct == pytest.approx(100.0)

    def test_even_split_is_fifty_percent(self):
        # The paper's worked example: equal balancing over two externals.
        dataset = Dataset()
        for t in range(10):
            external = "10.1.0.1" if t % 2 == 0 else "10.1.0.2"
            dataset.add(_experiment(at=float(t), external=external))
        rows = ldns_pair_table(dataset)
        assert rows[0].consistency_pct == pytest.approx(50.0)
        assert rows[0].pairs == 2

    def test_multiple_carriers_sorted(self):
        dataset = Dataset()
        dataset.add(_experiment(carrier="zeta"))
        dataset.add(_experiment(carrier="alpha"))
        rows = ldns_pair_table(dataset)
        assert [row.carrier for row in rows] == ["alpha", "zeta"]

    def test_missing_identifications_skipped(self):
        dataset = Dataset()
        record = _experiment()
        record.resolver_ids = []
        dataset.add(record)
        assert ldns_pair_table(dataset) == []


class TestResolverTimeline:
    def test_enumeration_by_first_appearance(self):
        dataset = Dataset()
        for t, external in enumerate(["a", "b", "a", "c"]):
            dataset.add(_experiment(at=float(t), external=f"10.1.{ord(external)}.1"))
        timeline = resolver_timeline(dataset, "dev-1")
        indices = [index for _, index in timeline.enumerated_ips()]
        assert indices == [1, 2, 1, 3]
        assert timeline.unique_ips() == 3
        assert timeline.changes() == 3

    def test_prefix_enumeration_collapses_same_24(self):
        dataset = Dataset()
        for t, ip in enumerate(["10.1.0.1", "10.1.0.9", "10.2.0.1"]):
            dataset.add(_experiment(at=float(t), external=ip))
        timeline = resolver_timeline(dataset, "dev-1")
        assert timeline.unique_prefixes() == 2
        assert [i for _, i in timeline.enumerated_prefixes()] == [1, 1, 2]

    def test_location_filter(self):
        dataset = Dataset()
        dataset.add(_experiment(at=0.0, external="10.1.0.1"))
        dataset.add(
            _experiment(
                at=1.0, external="10.9.0.1", latitude=34.05, longitude=-118.24
            )
        )
        centroid = GeoPoint(41.88, -87.63)
        timeline = resolver_timeline(
            dataset, "dev-1", within_km_of=centroid, radius_km=10.0
        )
        assert timeline.unique_ips() == 1

    def test_google_timeline(self):
        dataset = Dataset()
        dataset.add(_experiment(at=0.0, google_external="20.1.0.1"))
        dataset.add(_experiment(at=1.0, google_external="20.2.0.1"))
        timeline = resolver_timeline(dataset, "dev-1", resolver_kind="google")
        assert timeline.unique_ips() == 2

    def test_unknown_device_empty(self):
        timeline = resolver_timeline(Dataset(), "ghost")
        assert timeline.observations == []


class TestUniqueResolverCounts:
    def test_counts_ips_and_prefixes(self):
        dataset = Dataset()
        dataset.add(_experiment(external="10.1.0.1", google_external="20.1.0.1"))
        dataset.add(_experiment(external="10.1.0.2", google_external="20.2.0.1"))
        rows = unique_resolver_counts(dataset)
        by_kind = {(row.carrier, row.resolver_kind): row for row in rows}
        local = by_kind[("carrier-a", "local")]
        google = by_kind[("carrier-a", "google")]
        assert local.unique_ips == 2 and local.unique_prefixes == 1
        assert google.unique_ips == 2 and google.unique_prefixes == 2


class TestCentroid:
    def test_centroid_of_records(self):
        records = [
            _experiment(latitude=40.0, longitude=-80.0),
            _experiment(latitude=42.0, longitude=-90.0),
        ]
        centroid = device_location_centroid(records)
        assert centroid.latitude == pytest.approx(41.0)
        assert centroid.longitude == pytest.approx(-85.0)

    def test_empty_is_none(self):
        assert device_location_centroid([]) is None
