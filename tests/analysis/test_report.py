"""Report rendering."""

from repro.analysis.report import format_cdfs, format_fractions, format_table
from repro.analysis.stats import ECDF


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["Name", "Value"], [["alpha", 1.5], ["b", 22]], title="My Table"
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "Name" in lines[1]
        assert "alpha" in lines[3]
        assert "1.5" in lines[3]

    def test_none_rendered_as_dash(self):
        text = format_table(["a"], [[None]])
        assert "-" in text.splitlines()[-1]


class TestFormatCdfs:
    def test_quantile_grid(self):
        curves = {"att": ECDF.from_values(range(100)), "empty": ECDF.from_values([])}
        text = format_cdfs(curves, title="Fig X")
        assert "Fig X (ms)" in text
        assert "p50" in text
        att_line = next(line for line in text.splitlines() if line.startswith("att"))
        assert "49.5" in att_line
        empty_line = next(
            line for line in text.splitlines() if line.startswith("empty")
        )
        assert "-" in empty_line

    def test_none_curves_allowed(self):
        text = format_cdfs({"x": None})
        assert "x" in text


class TestFormatTimeline:
    def test_dots_at_levels(self):
        from repro.analysis.report import format_timeline

        series = [(0.0, 1), (50.0, 2), (100.0, 1)]
        text = format_timeline(series, title="Fig 8", width=20)
        lines = text.splitlines()
        assert lines[0] == "Fig 8"
        level_2 = next(line for line in lines if line.startswith("    2 |"))
        assert "•" in level_2

    def test_empty_series(self):
        from repro.analysis.report import format_timeline

        assert "(no observations)" in format_timeline([])

    def test_axis_labels(self):
        from repro.analysis.report import format_timeline

        text = format_timeline(
            [(0.0, 1)], left_label="Mar-1", right_label="Aug-1"
        )
        assert "Mar-1" in text and "Aug-1" in text


class TestFormatFractions:
    def test_percent_rendering(self):
        text = format_fractions({"equal": 0.77}, title="Fig 14")
        assert "77.0%" in text

    def test_raw_rendering(self):
        text = format_fractions({"equal": 0.5}, as_percent=False)
        assert "0.5" in text
