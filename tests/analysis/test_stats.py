"""Statistical primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    ECDF,
    group_ecdfs,
    percent_increase,
    percentile,
    summarize,
)

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = st.lists(floats, min_size=1, max_size=200)


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestPercentIncrease:
    def test_equal_is_zero(self):
        assert percent_increase(10.0, 10.0) == 0.0

    def test_double_is_hundred(self):
        assert percent_increase(20.0, 10.0) == 100.0

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            percent_increase(1.0, 0.0)


class TestECDF:
    def test_evaluate_endpoints(self):
        ecdf = ECDF.from_values([1.0, 2.0, 3.0, 4.0])
        assert ecdf.evaluate(0.5) == 0.0
        assert ecdf.evaluate(4.0) == 1.0
        assert ecdf.evaluate(2.0) == 0.5

    def test_nan_dropped(self):
        ecdf = ECDF.from_values([1.0, float("nan"), 3.0])
        assert len(ecdf) == 2

    def test_empty_operations_raise(self):
        ecdf = ECDF.from_values([])
        assert ecdf.is_empty
        with pytest.raises(ValueError):
            ecdf.median
        with pytest.raises(ValueError):
            ecdf.evaluate(1.0)

    def test_series_monotone(self):
        ecdf = ECDF.from_values(range(100))
        series = ecdf.series(points=20)
        xs = [x for x, _ in series]
        ys = [y for _, y in series]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_fraction_above(self):
        ecdf = ECDF.from_values([1, 2, 3, 4])
        assert ecdf.fraction_above(2.0) == 0.5

    @given(samples)
    def test_evaluate_is_monotone(self, values):
        ecdf = ECDF.from_values(values)
        lo, hi = min(values) - 1, max(values) + 1
        previous = -1.0
        for step in range(11):
            x = lo + (hi - lo) * step / 10.0
            current = ecdf.evaluate(x)
            assert current >= previous
            previous = current

    @given(samples)
    def test_quantile_within_range(self, values):
        ecdf = ECDF.from_values(values)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert min(values) <= ecdf.quantile(q) <= max(values)

    @given(samples)
    def test_median_splits_mass(self, values):
        ecdf = ECDF.from_values(values)
        median = ecdf.median
        assert ecdf.evaluate(median) >= 0.5


class TestECDFEdgeCases:
    """Behaviour locked before (and preserved after) the bisect rewrite."""

    def test_empty_everything(self):
        ecdf = ECDF.from_values([])
        assert ecdf.is_empty
        assert len(ecdf) == 0
        assert ecdf.series() == []
        assert repr(ecdf) == "ECDF(empty)"
        with pytest.raises(ValueError):
            ecdf.quantile(0.5)
        with pytest.raises(ValueError):
            ecdf.fraction_at_most(1.0)

    def test_all_nan_is_empty(self):
        assert ECDF.from_values([math.nan, math.nan]).is_empty

    def test_single_value(self):
        ecdf = ECDF.from_values([42.0])
        assert len(ecdf) == 1
        assert ecdf.evaluate(41.9) == 0.0
        assert ecdf.evaluate(42.0) == 1.0
        assert ecdf.evaluate(42.1) == 1.0
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert ecdf.quantile(q) == 42.0
        assert ecdf.median == 42.0

    def test_duplicate_heavy(self):
        ecdf = ECDF.from_values([5.0] * 50 + [10.0] * 50)
        assert ecdf.evaluate(4.9) == 0.0
        assert ecdf.evaluate(5.0) == 0.5
        assert ecdf.evaluate(9.9) == 0.5
        assert ecdf.evaluate(10.0) == 1.0
        assert ecdf.quantile(0.0) == 5.0
        assert ecdf.quantile(1.0) == 10.0
        assert ecdf.quantile(0.25) == 5.0
        assert ecdf.quantile(0.75) == 10.0

    def test_q0_q1_hit_extremes(self):
        ecdf = ECDF.from_values([3.0, 1.0, 2.0])
        assert ecdf.quantile(0.0) == 1.0
        assert ecdf.quantile(1.0) == 3.0

    def test_quantile_rejects_out_of_range(self):
        ecdf = ECDF.from_values([1.0, 2.0])
        with pytest.raises(ValueError):
            ecdf.quantile(-0.1)
        with pytest.raises(ValueError):
            ecdf.quantile(1.1)

    @given(samples, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_matches_numpy_linear(self, values, q):
        import numpy as np

        ecdf = ECDF.from_values(values)
        assert ecdf.quantile(q) == pytest.approx(
            float(np.quantile(np.asarray(values, dtype=float), q)),
            rel=1e-12,
            abs=1e-12,
        )

    @given(samples)
    def test_evaluate_matches_searchsorted(self, values):
        import numpy as np

        ecdf = ECDF.from_values(values)
        array = np.sort(np.asarray(values, dtype=float))
        for x in values + [min(values) - 1.0, max(values) + 1.0]:
            expected = float(
                np.searchsorted(array, x, side="right") / array.size
            )
            assert ecdf.evaluate(x) == expected


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.p90 >= summary.median >= summary.p10

    def test_empty_returns_none(self):
        assert summarize([]) is None

    def test_nan_dropped(self):
        summary = summarize([1.0, math.nan])
        assert summary.count == 1

    def test_row_order(self):
        summary = summarize([1.0])
        assert summary.row()[0] == 1  # count first


class TestGroupEcdfs:
    def test_drops_empty_groups(self):
        groups = group_ecdfs({"a": [1.0, 2.0], "b": []})
        assert set(groups) == {"a"}
