"""Empty record groups must degrade to empty results, never divide.

Regression net for the fast-path rework: every public analysis function
is called against (a) a dataset with no experiments at all, (b) a
carrier that never appears, and (c) a device that never reported.  Each
must come back empty/zero — a ``ZeroDivisionError`` anywhere here is a
missing guard.  The full report regeneration is also exercised over an
empty dataset, fused and reference, and must stay byte-identical.
"""

from __future__ import annotations

import pytest

from repro import CellularDNSStudy, StudyConfig
from repro.analysis import (
    cache,
    consistency,
    latency,
    localization,
    longitudinal,
    reachability,
    similarity,
)
from repro.analysis.egress import count_egress_points
from repro.measure.records import Dataset


@pytest.fixture(params=["empty", "unknown-carrier"])
def hollow(request, dataset):
    """(dataset, carrier) pairs whose record group is guaranteed empty."""
    if request.param == "empty":
        return Dataset(), "att"
    return dataset, "no-such-carrier"


class TestEmptyGroups:
    def test_latency_functions(self, hollow):
        data, carrier = hollow
        assert latency.resolution_times(data, carrier).is_empty
        assert latency.resolution_times(data, carrier, attempt=None).is_empty
        for curves in (
            latency.resolution_times_by_technology(data, carrier),
            latency.resolution_times_by_kind(data, carrier),
            latency.resolver_ping_latencies(data, carrier),
            latency.public_resolver_pings(data, carrier),
        ):
            for curve in curves.values():
                assert curve is None or curve.is_empty

    def test_cache_functions(self, hollow):
        data, carrier = hollow
        comparison = cache.cache_comparison(data, carriers=[carrier])
        assert comparison.deltas == []
        assert comparison.miss_rate() == 0.0
        if not len(data):
            assert cache.per_domain_miss_rates(data) == []

    def test_consistency_functions(self, hollow):
        data, carrier = hollow
        rows = [
            row for row in consistency.ldns_pair_table(data)
            if row.carrier == carrier
        ]
        for row in rows:
            assert row.pairs == 0
            assert row.consistency_pct == 0.0
        counts = [
            row for row in consistency.unique_resolver_counts(data)
            if row.carrier == carrier
        ]
        for row in counts:
            assert row.unique_ips == 0

    def test_unknown_device_timeline(self, dataset):
        timeline = consistency.resolver_timeline(dataset, "no-such-device")
        assert timeline.observations == []
        assert timeline.unique_ips() == 0
        assert timeline.unique_prefixes() == 0
        assert timeline.changes() == 0

    def test_localization_functions(self, hollow):
        data, carrier = hollow
        differentials = localization.replica_differentials(data, carrier)
        assert differentials.per_replica == []
        assert differentials.ecdf().is_empty
        comparison = localization.public_replica_comparison(data, carrier)
        assert comparison.percent_changes == []
        assert comparison.fraction_equal() == 0.0
        assert comparison.fraction_public_not_worse() == 0.0

    def test_similarity_functions(self, hollow):
        data, carrier = hollow
        result = similarity.similarity_study(
            data, "www.buzzfeed.com", carrier
        )
        assert result.same_prefix == []
        assert result.median_same_prefix() == 0.0
        assert result.fraction_disjoint() == 0.0

    def test_longitudinal_and_reachability(self, hollow):
        data, carrier = hollow
        curve = longitudinal.resolver_discovery_curve(data, carrier)
        assert curve.total == 0
        if not len(data):
            assert reachability.observed_external_resolvers(data) == {}

    def test_egress_counts(self, hollow):
        data, carrier = hollow
        counts = count_egress_points(data, lambda c, address: True)
        assert carrier not in counts or counts[carrier].count == 0


class TestEmptyDatasetReport:
    """The whole document renders from zero records, both paths alike."""

    def test_regeneration_byte_identical(self):
        study = CellularDNSStudy(StudyConfig.smoke_scale())
        study.use_dataset(Dataset())
        fused = study.regenerate_report()
        reference = study.regenerate_report(reference=True)
        assert fused.text == reference.text
        assert "Table 1" in fused.text
        assert "Fig 7" in fused.text
