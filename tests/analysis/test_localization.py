"""Replica differentials (Fig 2) and public comparison (Fig 14)."""

import pytest

from repro.analysis.localization import (
    public_replica_comparison,
    replica_differentials,
)
from repro.measure.records import (
    Dataset,
    ExperimentRecord,
    HttpRecord,
    ResolutionRecord,
)


def _experiment(
    gets,
    resolutions=(),
    carrier="att",
    device="dev-1",
    at=0.0,
):
    """gets: list of (replica_ip, domain, resolver_kind, ttfb)."""
    return ExperimentRecord(
        device_id=device, carrier=carrier, country="US", sequence=int(at),
        started_at=at, latitude=0.0, longitude=0.0,
        technology="LTE", generation="4G",
        resolutions=list(resolutions),
        http_gets=[
            HttpRecord(replica_ip=ip, domain=domain,
                       resolver_kind=kind, ttfb_ms=ttfb)
            for ip, domain, kind, ttfb in gets
        ],
    )


class TestReplicaDifferentials:
    def test_percent_increase_over_best(self):
        dataset = Dataset()
        dataset.add(
            _experiment(
                [
                    ("10.1.0.1", "a.com", "local", 100.0),
                    ("10.2.0.1", "a.com", "local", 200.0),
                ]
            )
        )
        result = replica_differentials(dataset, "att")
        assert sorted(result.per_replica) == [0.0, 100.0]

    def test_single_replica_skipped(self):
        dataset = Dataset()
        dataset.add(_experiment([("10.1.0.1", "a.com", "local", 100.0)]))
        result = replica_differentials(dataset, "att")
        assert result.per_replica == []

    def test_means_across_experiments(self):
        dataset = Dataset()
        dataset.add(_experiment([("10.1.0.1", "a.com", "local", 80.0)], at=0.0))
        dataset.add(_experiment([("10.1.0.1", "a.com", "local", 120.0)], at=1.0))
        dataset.add(_experiment([("10.2.0.1", "a.com", "local", 150.0)], at=2.0))
        result = replica_differentials(dataset, "att")
        # mean(10.1.0.1)=100, mean(10.2.0.1)=150 -> increases 0% and 50%.
        assert sorted(result.per_replica) == [0.0, 50.0]

    def test_access_weighting(self):
        dataset = Dataset()
        dataset.add(_experiment([
            ("10.1.0.1", "a.com", "local", 100.0),
            ("10.1.0.1", "a.com", "local", 100.0),
            ("10.2.0.1", "a.com", "local", 200.0),
        ]))
        result = replica_differentials(dataset, "att")
        assert len(result.per_access) == 3
        assert result.per_access.count(0.0) == 2

    def test_domain_filter(self):
        dataset = Dataset()
        dataset.add(_experiment([
            ("10.1.0.1", "a.com", "local", 100.0),
            ("10.2.0.1", "a.com", "local", 300.0),
            ("10.3.0.1", "b.com", "local", 100.0),
            ("10.4.0.1", "b.com", "local", 110.0),
        ]))
        result = replica_differentials(dataset, "att", domain="b.com")
        assert sorted(result.per_replica) == [0.0, pytest.approx(10.0)]

    def test_resolver_kind_filter(self):
        dataset = Dataset()
        dataset.add(_experiment([
            ("10.1.0.1", "a.com", "local", 100.0),
            ("10.2.0.1", "a.com", "google", 500.0),
        ]))
        local_only = replica_differentials(dataset, "att", resolver_kind="local")
        assert local_only.per_replica == []
        all_kinds = replica_differentials(dataset, "att")
        assert sorted(all_kinds.per_replica) == [0.0, 400.0]


def _fig14_experiment(local_ips, google_ips, ttfbs, carrier="att", at=0.0):
    resolutions = [
        ResolutionRecord(domain="a.com", resolver_kind="local",
                         resolution_ms=40.0, addresses=list(local_ips)),
        ResolutionRecord(domain="a.com", resolver_kind="google",
                         resolution_ms=50.0, addresses=list(google_ips)),
    ]
    gets = [(ip, "a.com", "local", ttfb) for ip, ttfb in ttfbs.items()]
    return _experiment(gets, resolutions=resolutions, carrier=carrier, at=at)


class TestPublicReplicaComparison:
    def test_same_prefix_scores_zero(self):
        dataset = Dataset()
        dataset.add(_fig14_experiment(
            ["10.1.0.1"], ["10.1.0.2"], {"10.1.0.1": 100.0, "10.1.0.2": 105.0},
        ))
        result = public_replica_comparison(dataset, "att")
        assert result.percent_changes == [0.0]
        assert result.fraction_equal() == 1.0

    def test_public_worse_is_positive(self):
        dataset = Dataset()
        dataset.add(_fig14_experiment(
            ["10.1.0.1"], ["10.2.0.1"], {"10.1.0.1": 100.0, "10.2.0.1": 150.0},
        ))
        result = public_replica_comparison(dataset, "att")
        assert result.percent_changes == [pytest.approx(50.0)]
        assert result.fraction_public_not_worse() == 0.0

    def test_public_better_is_negative(self):
        dataset = Dataset()
        dataset.add(_fig14_experiment(
            ["10.1.0.1"], ["10.2.0.1"], {"10.1.0.1": 200.0, "10.2.0.1": 100.0},
        ))
        result = public_replica_comparison(dataset, "att")
        assert result.percent_changes == [pytest.approx(-50.0)]
        assert result.fraction_public_not_worse() == 1.0

    def test_unmeasured_replicas_skipped(self):
        dataset = Dataset()
        dataset.add(_fig14_experiment(["10.1.0.1"], ["10.2.0.1"], {}))
        result = public_replica_comparison(dataset, "att")
        assert result.percent_changes == []

    def test_carrier_scoping(self):
        dataset = Dataset()
        dataset.add(_fig14_experiment(
            ["10.1.0.1"], ["10.1.0.2"], {"10.1.0.1": 1.0}, carrier="skt",
        ))
        assert public_replica_comparison(dataset, "att").percent_changes == []
