"""Shared fixtures.

Two worlds are built per test session:

* ``world`` — a pristine simulated Internet for unit-level poking.
* ``study``/``dataset`` — a small but analysis-grade campaign (the
  integration and analysis tests assert the paper's shape claims on it).
"""

from __future__ import annotations

import pytest

from repro import CellularDNSStudy, StudyConfig
from repro.core.world import World, build_world
from repro.measure.records import Dataset


@pytest.fixture(scope="session")
def world() -> World:
    """A freshly built world shared by unit tests (read-mostly)."""
    return build_world()


@pytest.fixture(scope="session")
def study() -> CellularDNSStudy:
    """A small-but-real study: ~1700 experiments across all carriers."""
    config = StudyConfig(
        seed=2014,
        device_scale=0.1,
        min_devices=1,
        duration_days=60.0,
        interval_hours=12.0,
    )
    return CellularDNSStudy(config)


@pytest.fixture(scope="session")
def dataset(study: CellularDNSStudy) -> Dataset:
    """The session study's dataset (campaign runs once per session)."""
    return study.dataset


@pytest.fixture()
def stream(world: World):
    """A throwaway random stream."""
    return world.rng.fork("tests").stream("fixture")
