"""The nine-domain catalogue (Table 2)."""

import pytest

from repro.cdn.catalog import (
    MEASURED_DOMAINS,
    domain_names,
    domains_by_cdn,
    spec_for,
)


class TestCatalogue:
    def test_nine_domains(self):
        assert len(MEASURED_DOMAINS) == 9

    def test_paper_confirmed_entries_present(self):
        names = domain_names()
        assert "m.yelp.com" in names  # the only Table 2 entry the OCR kept
        assert "www.buzzfeed.com" in names  # named in Fig 10's caption

    def test_unique_names(self):
        names = domain_names()
        assert len(set(names)) == len(names)

    def test_every_domain_has_a_cdn(self):
        grouped = domains_by_cdn()
        assert set(grouped) == {"globalcache", "continental", "usonly"}
        assert sum(len(specs) for specs in grouped.values()) == 9

    def test_short_a_ttls(self):
        # CDN A records are short-lived enough to defeat caches (Fig 7).
        assert all(spec.a_ttl <= 60 for spec in MEASURED_DOMAINS)

    def test_cnames_outlive_a_records(self):
        assert all(spec.cname_ttl > spec.a_ttl for spec in MEASURED_DOMAINS)

    def test_edge_names_live_in_cdn_zone(self):
        for spec in MEASURED_DOMAINS:
            assert spec.edge_name.endswith(f"{spec.cdn_key}-sim.net")

    def test_spec_for(self):
        assert spec_for("m.yelp.com").name == "m.yelp.com"
        with pytest.raises(KeyError):
            spec_for("m.unknown.example")

    def test_answers_per_response_small(self):
        # The paper's replica sets per response are small (Sec 5.1).
        assert all(1 <= spec.answers_per_response <= 4 for spec in MEASURED_DOMAINS)
