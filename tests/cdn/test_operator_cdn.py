"""On-net operator CDN extension."""

import pytest

from repro.cdn.catalog import spec_for
from repro.cdn.operator_cdn import build_operator_cdn
from repro.cdn.replica import http_ttfb_ms
from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.errors import ConfigError
from repro.core.world import build_world
from repro.geo.regions import US_CITIES, city_named


@pytest.fixture(scope="module")
def onnet_world():
    world = build_world()
    build_operator_cdn(world, "verizon")
    return world


def _device(key, home="Seattle"):
    return MobileDevice(
        device_id=key,
        carrier_key="verizon",
        mobility=MobilityModel(
            home_city=city_named(home),
            candidate_cities=US_CITIES,
            seed=77,
            device_key=key,
            travel_probability=0.0,
        ),
    )


class TestConstruction:
    def test_registered_in_world(self, onnet_world):
        assert "onnet-verizon" in onnet_world.cdns

    def test_idempotent(self, onnet_world):
        again = build_operator_cdn(onnet_world, "verizon")
        assert again is onnet_world.cdns["onnet-verizon"]

    def test_replicas_inside_operator_as(self, onnet_world):
        provider = onnet_world.cdns["onnet-verizon"]
        for replica in provider.all_replicas():
            assert replica.host.asys.asn == 6167

    def test_replicas_opaque_from_outside(self, onnet_world, stream):
        provider = onnet_world.cdns["onnet-verizon"]
        origin = onnet_world.vantage.origin(stream)
        rtt = onnet_world.internet.measure_rtt(
            origin, provider.all_replicas()[0].ip, stream
        )
        assert rtt is None  # cellular firewall applies to on-net caches too

    def test_unknown_carrier_rejected(self, onnet_world):
        with pytest.raises(ConfigError):
            build_operator_cdn(onnet_world, "nosuch")


class TestOracleSelection:
    def test_cluster_follows_attachment(self, onnet_world):
        provider = onnet_world.cdns["onnet-verizon"]
        operator = onnet_world.operators["verizon"]
        device = _device("onnet-dev-1", home="Seattle")
        attachment = operator.attachment(device, now=0.0)
        cluster = provider.cluster_for_attachment(attachment)
        assert cluster.location.distance_km(attachment.egress.location) < 1.0

    def test_selection_size(self, onnet_world):
        provider = onnet_world.cdns["onnet-verizon"]
        operator = onnet_world.operators["verizon"]
        attachment = operator.attachment(_device("onnet-dev-2"), now=0.0)
        spec = spec_for("m.cnn.com")
        replicas = provider.select_for_attachment(spec, attachment)
        assert len(replicas) == spec.answers_per_response

    def test_onnet_beats_commercial_cdn(self, onnet_world, stream):
        """The extension's headline: on-net replicas cut TTFB."""
        provider = onnet_world.cdns["onnet-verizon"]
        commercial = onnet_world.cdns["usonly"]
        operator = onnet_world.operators["verizon"]
        device = _device("onnet-dev-3", home="Seattle")
        attachment = operator.attachment(device, now=0.0)
        spec = spec_for("m.cnn.com")
        from repro.cellnet.radio import RadioTechnology

        onnet_total = 0.0
        commercial_total = 0.0
        for trial in range(8):
            origin = operator.probe_origin(
                device, float(trial), stream, technology=RadioTechnology.LTE
            )
            onnet_replica = provider.select_for_attachment(spec, attachment)[0]
            commercial_replica = commercial.select_replicas(
                spec, operator.deployment.external_ips()[0], 0.0
            )[0]
            onnet_total += http_ttfb_ms(
                onnet_world.internet, origin, onnet_replica, stream
            )
            commercial_total += http_ttfb_ms(
                onnet_world.internet, origin, commercial_replica, stream
            )
        assert onnet_total < commercial_total
