"""CDN providers: clusters, selection, authoritative answers."""

import pytest

from repro.cdn.catalog import spec_for
from repro.cdn.provider import registrable_zone
from repro.core.addressing import prefix24
from repro.dns.message import RCode, RRType, make_query


class TestRegistrableZone:
    @pytest.mark.parametrize(
        "name,zone",
        [
            ("m.cnn.com", "cnn.com"),
            ("www.buzzfeed.com", "buzzfeed.com"),
            ("m.espn.go.com", "go.com"),
            ("example", "example"),
        ],
    )
    def test_zones(self, name, zone):
        assert registrable_zone(name) == zone


class TestClusters:
    def test_cluster_per_footprint_city(self, world):
        provider = world.cdns["usonly"]
        assert len(provider.clusters) == 8

    def test_each_cluster_owns_a_24(self, world):
        provider = world.cdns["globalcache"]
        prefixes = {str(cluster.prefix) for cluster in provider.clusters}
        assert len(prefixes) == len(provider.clusters)
        for cluster in provider.clusters:
            for replica in cluster.replicas:
                assert cluster.prefix.contains(replica.ip)

    def test_usonly_has_no_sk_presence(self, world):
        from repro.geo.regions import Country

        provider = world.cdns["usonly"]
        assert all(
            cluster.city.country is Country.US for cluster in provider.clusters
        )

    def test_globalcache_has_sk_presence(self, world):
        from repro.geo.regions import Country

        provider = world.cdns["globalcache"]
        assert any(
            cluster.city.country is Country.SOUTH_KOREA
            for cluster in provider.clusters
        )

    def test_cluster_of_ip(self, world):
        provider = world.cdns["continental"]
        replica = provider.clusters[2].replicas[0]
        assert provider.cluster_of_ip(replica.ip) is provider.clusters[2]
        assert provider.cluster_of_ip("203.0.113.1") is None


class TestSelection:
    def test_same_resolver_prefix_same_set(self, world):
        provider = world.cdns["usonly"]
        spec = spec_for("www.buzzfeed.com")
        first = provider.select_replicas(spec, "198.18.7.1", 0.0)
        second = provider.select_replicas(spec, "198.18.7.240", 0.0)
        assert [r.ip for r in first] == [r.ip for r in second]

    def test_selection_size(self, world):
        provider = world.cdns["usonly"]
        spec = spec_for("www.buzzfeed.com")
        replicas = provider.select_replicas(spec, "198.18.7.1", 0.0)
        assert len(replicas) == spec.answers_per_response

    def test_selected_replicas_share_cluster(self, world):
        provider = world.cdns["usonly"]
        spec = spec_for("www.buzzfeed.com")
        replicas = provider.select_replicas(spec, "198.18.7.1", 0.0)
        assert len({prefix24(r.ip) for r in replicas}) == 1


class TestAuthority:
    def test_answers_edge_names_with_short_ttl(self, world):
        provider = world.cdns["usonly"]
        spec = spec_for("www.buzzfeed.com")
        response = provider.authority.answer(
            make_query(spec.edge_name), "198.18.7.1", 0.0
        )
        assert response.rcode is RCode.NOERROR
        records = response.a_records()
        assert records
        assert all(record.ttl == spec.a_ttl for record in records)

    def test_unknown_edge_name_nxdomain(self, world):
        provider = world.cdns["usonly"]
        response = provider.authority.answer(
            make_query("ghost.edge.usonly-sim.net"), "198.18.7.1", 0.0
        )
        assert response.rcode is RCode.NXDOMAIN

    def test_out_of_zone_refused(self, world):
        provider = world.cdns["usonly"]
        response = provider.authority.answer(
            make_query("www.example.org"), "198.18.7.1", 0.0
        )
        assert response.rcode is RCode.REFUSED

    def test_non_a_queries_answer_empty(self, world):
        provider = world.cdns["usonly"]
        spec = spec_for("www.buzzfeed.com")
        response = provider.authority.answer(
            make_query(spec.edge_name, RRType.TXT), "198.18.7.1", 0.0
        )
        assert response.rcode is RCode.NOERROR
        assert response.answers == []


class TestReplicaIndex:
    def test_all_replicas_indexed(self, world):
        provider = world.cdns["continental"]
        replicas = provider.all_replicas()
        assert len(replicas) == len(provider.clusters) * 10
        assert provider.replica_by_ip(replicas[0].ip) is replicas[0]
