"""Replica servers and the TTFB model."""

from repro.cdn.replica import http_ttfb_ms, ping_replica_ms
from repro.core.node import ProbeOrigin


def _origin(world):
    vantage = world.vantage
    return ProbeOrigin(
        source_ip=vantage.host.ip,
        asys=vantage.host.asys,
        location=vantage.host.location,
        access_rtt_ms=1.0,
    )


class TestTtfb:
    def test_ttfb_exceeds_single_rtt(self, world, stream):
        provider = world.cdns["usonly"]
        replica = provider.all_replicas()[0]
        origin = _origin(world)
        rtt = ping_replica_ms(world.internet, origin, replica, stream)
        ttfb = http_ttfb_ms(world.internet, origin, replica, stream)
        assert rtt is not None and ttfb is not None
        # Handshake + request: roughly two round trips plus service time.
        assert ttfb > rtt * 1.4

    def test_nearby_replica_faster(self, world, stream):
        provider = world.cdns["usonly"]
        origin = _origin(world)  # Chicago vantage
        chicago = next(
            cluster for cluster in provider.clusters
            if cluster.city.name == "Chicago"
        ).replicas[0]
        la = next(
            cluster for cluster in provider.clusters
            if cluster.city.name == "Los Angeles"
        ).replicas[0]
        near = sum(
            http_ttfb_ms(world.internet, origin, chicago, stream) for _ in range(5)
        )
        far = sum(
            http_ttfb_ms(world.internet, origin, la, stream) for _ in range(5)
        )
        assert near < far

    def test_replicas_answer_pings(self, world, stream):
        provider = world.cdns["globalcache"]
        origin = _origin(world)
        replica = provider.all_replicas()[0]
        assert ping_replica_ms(world.internet, origin, replica, stream) is not None
