"""The /24 -> cluster mapping policy."""

from repro.cdn.mapping import MappingPolicy
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import city_named

CLUSTERS = [
    city_named("New York").location,
    city_named("Chicago").location,
    city_named("Los Angeles").location,
    city_named("Seattle").location,
]


def _policy(is_cellular=True, **overrides):
    location = city_named("Chicago").location

    def locator(ip):
        if ip.startswith("198.18."):
            return location, is_cellular
        return None

    defaults = dict(locator=locator, cluster_locations=CLUSTERS, seed=4)
    defaults.update(overrides)
    return MappingPolicy(**defaults)


class TestMapping:
    def test_same_prefix_same_cluster(self):
        policy = _policy()
        assert policy.cluster_for("198.18.5.1", 0.0) == policy.cluster_for(
            "198.18.5.200", 0.0
        )

    def test_wired_maps_to_nearest(self):
        policy = _policy(is_cellular=False)
        assert policy.cluster_for("198.18.5.1", 0.0) == 1  # Chicago

    def test_cellular_with_zero_error_also_nearest(self):
        policy = _policy(cellular_error_km=0.0, cellular_blunder_prob=0.0)
        assert policy.cluster_for("198.18.5.1", 0.0) == 1

    def test_blunders_scatter_prefixes(self):
        policy = _policy(cellular_blunder_prob=1.0)
        clusters = {
            policy.cluster_for(f"198.18.{block}.1", 0.0) for block in range(40)
        }
        assert len(clusters) > 1

    def test_unknown_space_stable(self):
        policy = _policy()
        first = policy.cluster_for("203.0.113.7", 0.0)
        assert policy.cluster_for("203.0.113.99", 0.0) == first

    def test_decision_stable_within_epoch(self):
        policy = _policy()
        early = policy.cluster_for("198.18.9.1", 0.0)
        later = policy.cluster_for("198.18.9.1", policy.remap_epoch_s - 1.0)
        assert early == later

    def test_decisions_may_change_across_epochs(self):
        policy = _policy(cellular_blunder_prob=0.5)
        decisions = {
            policy.cluster_for("198.18.9.1", epoch * policy.remap_epoch_s)
            for epoch in range(30)
        }
        assert len(decisions) > 1

    def test_mapped_blocks_diagnostics(self):
        policy = _policy()
        policy.cluster_for("198.18.9.1", 0.0)
        policy.cluster_for("198.18.10.1", 0.0)
        assert policy.mapped_blocks() == ["198.18.10.0/24", "198.18.9.0/24"]
