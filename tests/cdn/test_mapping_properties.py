"""Property-based invariants of the mapping policy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.mapping import MappingPolicy
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import US_CITIES

CLUSTERS = [city.location for city in US_CITIES[:8]]

octets = st.integers(min_value=0, max_value=255)
ips = st.tuples(octets, octets, octets, octets).map(
    lambda parts: ".".join(str(part) for part in parts)
)
times = st.floats(min_value=0.0, max_value=1.5e7, allow_nan=False)


def _policy(seed=1, **overrides):
    def locator(ip):
        # Every address "lives" somewhere deterministic in the US.
        index = sum(int(part) for part in ip.split(".")) % len(US_CITIES)
        return US_CITIES[index].location, True

    defaults = dict(locator=locator, cluster_locations=CLUSTERS, seed=seed)
    defaults.update(overrides)
    return MappingPolicy(**defaults)


class TestMappingProperties:
    @given(ips, times)
    @settings(max_examples=200)
    def test_decision_always_a_valid_cluster(self, ip, now):
        policy = _policy()
        decision = policy.cluster_for(ip, now)
        assert 0 <= decision < len(CLUSTERS)

    @given(ips, times, octets)
    @settings(max_examples=200)
    def test_same_slash24_same_decision(self, ip, now, last_octet):
        policy = _policy()
        sibling = ip.rsplit(".", 1)[0] + f".{last_octet}"
        assert policy.cluster_for(ip, now) == policy.cluster_for(sibling, now)

    @given(ips, times)
    @settings(max_examples=100)
    def test_stable_within_epoch(self, ip, now):
        policy = _policy()
        later = min(
            now + policy.remap_epoch_s * 0.49,
            (int(now // policy.remap_epoch_s) + 1) * policy.remap_epoch_s - 1.0,
        )
        assert policy.cluster_for(ip, now) == policy.cluster_for(ip, later)

    @given(ips, times)
    @settings(max_examples=100)
    def test_ecs_and_resolver_flags_agree_on_cache(self, ip, now):
        # Whatever got decided first for a /24 is what the cache serves,
        # regardless of the later call's flag (one decision per block).
        policy = _policy()
        first = policy.cluster_for(ip, now, is_client_subnet=True)
        second = policy.cluster_for(ip, now, is_client_subnet=False)
        assert first == second

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=50)
    def test_zero_error_maps_to_nearest(self, salt):
        policy = _policy(
            seed=salt, cellular_error_km=0.0, cellular_blunder_prob=0.0
        )
        ip = f"10.{salt % 256}.{(salt // 7) % 256}.1"
        location, _ = policy.locator(ip)
        expected = min(
            range(len(CLUSTERS)),
            key=lambda index: CLUSTERS[index].distance_km(location),
        )
        assert policy.cluster_for(ip, 0.0) == expected
