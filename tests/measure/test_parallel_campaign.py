"""Determinism guarantees of the sharded-parallel campaign.

The contract under test: for one world config and one campaign config,
:class:`ParallelCampaign` (fresh world per carrier shard, merged) and
:class:`Campaign` (one world, global time order) archive byte-identical
experiment streams.  Hash equality here is the repo's licence to use
``--workers`` anywhere without caveats.
"""

import pytest

from repro.core.world import WorldConfig, build_world
from repro.measure.campaign import Campaign, CampaignConfig, ParallelCampaign

#: Small but multi-carrier: every carrier contributes devices, several
#: experiments interleave per device, public-DNS probes run.
SMOKE = dict(device_scale=0.02, duration_days=6.0, interval_hours=24.0)
SEED = 977


def _world():
    return build_world(WorldConfig(seed=SEED))


def _config():
    return CampaignConfig(**SMOKE)


@pytest.fixture(scope="module")
def serial_dataset():
    return Campaign(_world(), _config()).run()


class TestSerialDeterminism:
    def test_two_runs_bit_identical(self, serial_dataset):
        again = Campaign(_world(), _config()).run()
        assert again.content_hash() == serial_dataset.content_hash()
        # Hash equality must mean line equality, not just luck.
        assert [r.to_json() for r in again] == [
            r.to_json() for r in serial_dataset
        ]

    def test_globally_time_ordered(self, serial_dataset):
        keys = [(r.started_at, r.device_id) for r in serial_dataset]
        assert keys == sorted(keys)

    def test_all_carriers_present(self, serial_dataset):
        assert set(serial_dataset.by_carrier()) == {
            "att", "sprint", "tmobile", "verizon", "skt", "lgu",
        }


class TestParallelParity:
    def test_two_workers_match_serial_hash(self, serial_dataset):
        parallel = ParallelCampaign(_world(), _config(), workers=2).run()
        assert parallel.content_hash() == serial_dataset.content_hash()
        assert len(parallel) == len(serial_dataset)
        assert parallel.metadata["workers"] == 2

    def test_workers_zero_falls_back_to_serial(self, serial_dataset):
        fallback = ParallelCampaign(_world(), _config(), workers=0).run()
        assert fallback.content_hash() == serial_dataset.content_hash()
        # The serial path ran: no worker count is recorded.
        assert "workers" not in fallback.metadata

    def test_shard_equals_serial_restriction(self, serial_dataset):
        """One carrier's shard is the serial stream filtered to it."""
        shard = Campaign(_world(), _config()).run_shard("sprint")
        restricted = [r for r in serial_dataset if r.carrier == "sprint"]
        assert [r.to_json() for r in shard] == [
            r.to_json() for r in restricted
        ]
