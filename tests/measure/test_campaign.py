"""Campaign runner."""

import pytest

from repro.core.errors import ConfigError
from repro.core.world import build_world
from repro.measure.campaign import Campaign, CampaignConfig, PAPER_CLIENT_COUNTS


def _tiny_config(**overrides):
    defaults = dict(
        device_scale=0.0,
        min_devices=1,
        duration_days=2.0,
        interval_hours=12.0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestPopulation:
    def test_paper_counts_total_158(self):
        assert sum(PAPER_CLIENT_COUNTS.values()) == 158

    def test_min_devices_floor(self, world):
        campaign = Campaign(world, _tiny_config())
        for carrier in world.operators:
            assert len(campaign.devices_of(carrier)) == 1

    def test_scaling(self, world):
        campaign = Campaign(world, _tiny_config(device_scale=0.5))
        assert len(campaign.devices_of("verizon")) == 32
        assert len(campaign.devices_of("lgu")) == 2

    def test_devices_live_in_their_market(self, world):
        campaign = Campaign(world, _tiny_config(device_scale=0.2))
        from repro.geo.regions import Country

        for device in campaign.devices_of("skt"):
            assert device.mobility.home_city.country is Country.SOUTH_KOREA
        for device in campaign.devices_of("att"):
            assert device.mobility.home_city.country is Country.US

    def test_unknown_carrier_rejected(self, world):
        config = _tiny_config(devices_per_carrier={"att": 1})
        with pytest.raises(ConfigError):
            Campaign(world, config)


class TestExecution:
    def test_run_produces_all_carriers(self):
        world = build_world()
        campaign = Campaign(world, _tiny_config())
        dataset = campaign.run()
        assert set(dataset.carriers()) == set(world.operators)
        assert dataset.metadata["devices"] == 6
        assert dataset.metadata["experiments"] == len(dataset)

    def test_experiments_time_ordered(self):
        world = build_world()
        campaign = Campaign(world, _tiny_config())
        dataset = campaign.run()
        times = [record.started_at for record in dataset]
        assert times == sorted(times)

    def test_deterministic_across_worlds(self):
        first = Campaign(build_world(), _tiny_config()).run()
        second = Campaign(build_world(), _tiny_config()).run()
        assert first.experiments == second.experiments
