"""Dataset validation."""

from repro.measure.records import (
    Dataset,
    ExperimentRecord,
    PingRecord,
    ResolutionRecord,
    ResolverIdRecord,
    TracerouteRecord,
)
from repro.measure.validate import validate_dataset


def _record(**overrides):
    defaults = dict(
        device_id="dev-1",
        carrier="att",
        country="US",
        sequence=0,
        started_at=0.0,
        latitude=41.9,
        longitude=-87.6,
        technology="LTE",
        generation="4G",
    )
    defaults.update(overrides)
    return ExperimentRecord(**defaults)


class TestCleanDataset:
    def test_empty_dataset_ok(self):
        report = validate_dataset(Dataset())
        assert report.ok
        assert report.records_checked == 0

    def test_clean_records_ok(self):
        dataset = Dataset()
        dataset.add(_record(sequence=0, started_at=0.0))
        dataset.add(_record(sequence=1, started_at=100.0))
        report = validate_dataset(dataset)
        assert report.ok
        assert report.records_checked == 2

    def test_real_campaign_validates(self, dataset):
        report = validate_dataset(dataset)
        assert report.ok, [str(f) for f in report.errors[:5]]


class TestFieldChecks:
    def test_missing_device_id(self):
        dataset = Dataset()
        dataset.add(_record(device_id=""))
        assert not validate_dataset(dataset).ok

    def test_bad_coordinates(self):
        dataset = Dataset()
        dataset.add(_record(latitude=123.0))
        report = validate_dataset(dataset)
        assert any("latitude" in str(f) for f in report.errors)

    def test_unknown_country_warns(self):
        dataset = Dataset()
        dataset.add(_record(country="FR"))
        report = validate_dataset(dataset)
        assert report.ok
        assert report.warnings

    def test_unknown_resolver_kind(self):
        dataset = Dataset()
        dataset.add(
            _record(
                resolutions=[
                    ResolutionRecord(
                        domain="a.com", resolver_kind="quad9",
                        resolution_ms=10.0,
                    )
                ]
            )
        )
        assert not validate_dataset(dataset).ok

    def test_negative_rtt(self):
        dataset = Dataset()
        dataset.add(_record(pings=[PingRecord("1.2.3.4", "replica", -5.0)]))
        assert not validate_dataset(dataset).ok

    def test_non_monotone_ttls(self):
        dataset = Dataset()
        dataset.add(
            _record(
                traceroutes=[
                    TracerouteRecord(
                        target_ip="1.2.3.4", target_kind="replica",
                        hops=[[2, "10.0.0.1", 1.0], [1, "10.0.0.2", 2.0]],
                    )
                ]
            )
        )
        assert not validate_dataset(dataset).ok

    def test_duplicate_identification_kinds(self):
        dataset = Dataset()
        dataset.add(
            _record(
                resolver_ids=[
                    ResolverIdRecord("local", "10.0.0.1", "10.0.0.2"),
                    ResolverIdRecord("local", "10.0.0.1", "10.0.0.3"),
                ]
            )
        )
        assert not validate_dataset(dataset).ok


class TestCrossRecordChecks:
    def test_time_reversal_detected(self):
        dataset = Dataset()
        dataset.add(_record(sequence=0, started_at=100.0))
        dataset.add(_record(sequence=1, started_at=50.0))
        report = validate_dataset(dataset)
        assert any("backwards" in str(f) for f in report.errors)

    def test_duplicate_sequence_warns(self):
        dataset = Dataset()
        dataset.add(_record(sequence=3, started_at=0.0))
        dataset.add(_record(sequence=3, started_at=10.0))
        report = validate_dataset(dataset)
        assert report.ok
        assert any("sequence" in str(f) for f in report.warnings)

    def test_summary_text(self):
        dataset = Dataset()
        dataset.add(_record())
        summary = validate_dataset(dataset).summary()
        assert "1 records" in summary
