"""Byte-identity of sub-carrier sharded execution.

The contract under test extends ``test_parallel_campaign``: with
range-scoped DNS caches, :class:`ShardedCampaign` may split a carrier's
device population *mid-carrier* across worker tasks and still archive
the exact bytes the serial walk produces — at any shard count, via the
in-memory merge or the streaming JSONL spill.  The config here forces
mid-carrier splits (``range_size=2`` over carriers of up to 5 devices)
so every shard count exercises the cross-shard merge policy.
"""

import os
import tempfile

import pytest

from repro.core.world import WorldConfig, build_world
from repro.measure.campaign import (
    Campaign,
    CampaignConfig,
    ShardedCampaign,
)
from repro.measure.records import Dataset, record_event_key

#: Mixed odd/even populations with range_size=2: nine device ranges,
#: several of which split a carrier, so shard counts that are not
#: carrier-aligned (3, 7, 13) cut inside carriers.
SMOKE = dict(
    devices_per_carrier={
        "att": 3,
        "sprint": 1,
        "tmobile": 2,
        "verizon": 5,
        "skt": 1,
        "lgu": 1,
    },
    duration_days=6.0,
    interval_hours=24.0,
    range_size=2,
)
SEED = 977


def _world():
    return build_world(WorldConfig(seed=SEED))


def _config():
    return CampaignConfig(**SMOKE)


@pytest.fixture(scope="module")
def serial_dataset():
    return Campaign(_world(), _config()).run()


class TestShardTasks:
    def test_tasks_partition_ranges_in_order(self):
        sharded = ShardedCampaign(_world(), _config(), workers=2, shards=4)
        tasks = sharded.shard_tasks()
        flattened = [r for task in tasks for r in task]
        assert flattened == sharded.ranges
        assert all(task for task in tasks)
        assert len(tasks) == 4

    def test_shard_count_capped_by_range_count(self):
        sharded = ShardedCampaign(_world(), _config(), workers=2, shards=99)
        assert sharded.shards == len(sharded.ranges)
        assert len(sharded.shard_tasks()) == len(sharded.ranges)

    def test_devices_in_ranges_restores_population(self):
        campaign = Campaign(_world(), _config())
        sharded_config = _config()
        ranges = sharded_config.device_ranges(
            sorted({d.carrier_key for d in campaign.devices})
        )
        regrouped = campaign.devices_in_ranges(ranges)
        assert {d.device_id for d in regrouped} == {
            d.device_id for d in campaign.devices
        }

    def test_every_device_carries_its_range_scope(self):
        campaign = Campaign(_world(), _config())
        for device in campaign.devices:
            expected = f"{device.carrier_key}/r{device.device_index // 2}"
            assert device.cache_scope == expected


class TestShardedParity:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 13])
    def test_any_shard_count_matches_serial_hash(
        self, serial_dataset, shards
    ):
        sharded = ShardedCampaign(
            _world(), _config(), workers=2, shards=shards
        ).run()
        assert sharded.content_hash() == serial_dataset.content_hash()
        assert len(sharded) == len(serial_dataset)

    def test_metadata_records_workers_and_shards(self):
        dataset = ShardedCampaign(
            _world(), _config(), workers=2, shards=3
        ).run()
        assert dataset.metadata["workers"] == 2
        assert dataset.metadata["shards"] == 3

    def test_workers_zero_falls_back_to_serial(self, serial_dataset):
        fallback = ShardedCampaign(
            _world(), _config(), workers=0, shards=3
        ).run()
        assert fallback.content_hash() == serial_dataset.content_hash()
        assert "workers" not in fallback.metadata


class TestStreamingMerge:
    def test_streaming_spill_matches_serial_bytes(self, serial_dataset):
        sharded = ShardedCampaign(_world(), _config(), workers=2, shards=3)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "campaign.jsonl")
            result = sharded.run_streaming(path)
            assert result["content_hash"] == serial_dataset.content_hash()
            assert result["experiments"] == len(serial_dataset)
            loaded = Dataset.load(path)
        assert loaded.content_hash() == serial_dataset.content_hash()
        assert loaded.metadata["shards"] == 3

    def test_streaming_serial_fallback_matches(self, serial_dataset):
        sharded = ShardedCampaign(_world(), _config(), workers=0, shards=1)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "campaign.jsonl")
            result = sharded.run_streaming(path)
            assert result["content_hash"] == serial_dataset.content_hash()
            loaded = Dataset.load(path)
        assert loaded.content_hash() == serial_dataset.content_hash()


class TestFromShardStreams:
    def test_merges_presorted_shards(self, serial_dataset):
        records = list(serial_dataset)
        shards = [records[0::3], records[1::3], records[2::3]]
        for shard in shards:
            shard.sort(key=record_event_key)
        merged = Dataset.from_shard_streams(
            (iter(shard) for shard in shards), metadata={"seed": SEED}
        )
        assert merged.content_hash() == serial_dataset.content_hash()
        assert merged.metadata == {"seed": SEED}
