"""Experiment scheduling."""

from repro.core.clock import SECONDS_PER_HOUR
from repro.measure.scheduler import ExperimentSchedule


def _schedule(**overrides):
    defaults = dict(start=0.0, end=48 * SECONDS_PER_HOUR, seed=3)
    defaults.update(overrides)
    return ExperimentSchedule(**defaults)


class TestSchedule:
    def test_roughly_hourly(self):
        schedule = _schedule(duty_cycle=1.0, jitter_fraction=0.0)
        times = schedule.times_for("dev-1")
        assert 47 <= len(times) <= 48

    def test_times_within_window(self):
        schedule = _schedule()
        times = schedule.times_for("dev-1")
        assert all(0.0 <= t < schedule.end for t in times)

    def test_times_sorted(self):
        times = _schedule().times_for("dev-1")
        assert times == sorted(times)

    def test_duty_cycle_drops_slots(self):
        full = _schedule(duty_cycle=1.0).times_for("dev-1")
        half = _schedule(duty_cycle=0.5).times_for("dev-1")
        assert len(half) < len(full)
        assert len(half) > 0.25 * len(full)

    def test_zero_duty_cycle_empty(self):
        assert _schedule(duty_cycle=0.0).times_for("dev-1") == []

    def test_devices_have_different_phases(self):
        schedule = _schedule(duty_cycle=1.0, jitter_fraction=0.0)
        assert schedule.times_for("dev-1")[:3] != schedule.times_for("dev-2")[:3]

    def test_deterministic(self):
        assert _schedule().times_for("dev-1") == _schedule().times_for("dev-1")

    def test_empty_window(self):
        schedule = _schedule(end=0.0)
        assert schedule.times_for("dev-1") == []

    def test_expected_count(self):
        schedule = _schedule(duty_cycle=0.5)
        assert schedule.expected_count() == 24

    def test_interval_override(self):
        schedule = _schedule(interval_s=12 * SECONDS_PER_HOUR, duty_cycle=1.0)
        assert 3 <= len(schedule.times_for("dev-1")) <= 4
