"""Client-side probe primitives."""

import pytest

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.world import WHOAMI_ZONE
from repro.measure.probes import DeviceProbeSession
from repro.geo.regions import US_CITIES, city_named


@pytest.fixture()
def session(world):
    mobility = MobilityModel(
        home_city=city_named("Chicago"),
        candidate_cities=US_CITIES,
        seed=55,
        device_key="probe-dev",
        travel_probability=0.0,
    )
    device = MobileDevice(
        device_id="probe-dev", carrier_key="att", mobility=mobility
    )
    stream = world.rng.fork("probe-tests").stream("s")
    return DeviceProbeSession.begin(world, device, now=0.0, stream=stream)


class TestSessionSetup:
    def test_begin_draws_technology(self, session):
        assert session.technology is not None
        assert session.device.active_technology is session.technology

    def test_attachment_populated(self, session):
        assert session.attachment.client_ip
        assert session.attachment.egress is not None


class TestDnsProbes:
    def test_local_resolution(self, session):
        record = session.dns_local("www.google.com", now=0.0)
        assert record.resolver_kind == "local"
        assert record.addresses
        assert record.cname_chain
        assert record.resolution_ms > 0

    def test_public_resolution(self, session):
        record = session.dns_public("google", "www.google.com", now=0.0)
        assert record.resolver_kind == "google"
        assert record.addresses

    def test_opendns_resolution(self, session):
        record = session.dns_public("opendns", "m.yelp.com", now=0.0)
        assert record.addresses


class TestPingProbes:
    def test_bootstrap_ping(self, session):
        record = session.bootstrap_ping(now=0.0)
        assert record.target_kind == "bootstrap"
        assert record.rtt_ms is not None

    def test_configured_resolver_ping(self, session):
        record = session.ping_configured_resolver(now=0.0)
        assert record.target_ip == session.attachment.client_dns_ip
        assert record.rtt_ms is not None

    def test_public_resolver_ping(self, session):
        record = session.ping_public_resolver("google", now=0.0)
        assert record.target_ip == "8.8.8.8"
        assert record.rtt_ms is not None

    def test_ping_unknown_ip_silent(self, session):
        record = session.ping_ip("203.0.113.99", "replica", now=0.0)
        assert record.rtt_ms is None


class TestHttpProbes:
    def test_http_to_replica(self, session, world):
        replica = world.cdns["usonly"].all_replicas()[0]
        record = session.http_get(replica.ip, "www.buzzfeed.com", "local", now=0.0)
        assert record.ttfb_ms is not None and record.ttfb_ms > 0

    def test_http_to_non_replica_fails(self, session):
        record = session.http_get("203.0.113.99", "www.buzzfeed.com", "local", 0.0)
        assert record.ttfb_ms is None


class TestResolverIdentification:
    def test_local_identification(self, session):
        record = session.identify_resolver("local", now=0.0, token="t1")
        assert record.configured_ip == session.attachment.client_dns_ip
        assert record.observed_external_ip in (
            session.operator.deployment.external_ips()
        )

    def test_public_identification(self, session, world):
        record = session.identify_resolver("google", now=0.0, token="t2")
        assert record.configured_ip == "8.8.8.8"
        assert record.observed_external_ip != "8.8.8.8"
        assert world.internet.host(record.observed_external_ip) is not None

    def test_tokens_hit_whoami_zone(self, session, world):
        before = len(world.echo_authority.log)
        session.identify_resolver("local", now=0.0, token="t3")
        assert len(world.echo_authority.log) == before + 1
        assert world.echo_authority.log[-1].qname.endswith(WHOAMI_ZONE)


class TestTraceroute:
    def test_traceroute_to_vantage(self, session, world):
        record = session.traceroute_ip(world.vantage.host.ip, "egress", now=0.0)
        assert record.reached
        assert record.hop_ips()


class TestSessionCaches:
    """The per-experiment derivation caches (see the module docstring).

    Cached values must be pure functions of topology or epoch-quantised
    time; these tests pin the memo behaviour, while the campaign-level
    ``content_hash`` identity tests pin that caching never changes the
    emitted dataset.
    """

    def test_attachment_cached_within_epoch(self, session):
        first = session.attachment_at(10.0)
        second = session.attachment_at(20.0)  # same epoch key
        assert second is first
        assert first is session.attachment  # seeded by begin()

    def test_attachment_rederived_across_epochs(self, session):
        key_now = session.operator.attachment_epoch_key(session.device, 0.0)
        far = 400.0 * 24 * 3600
        key_far = session.operator.attachment_epoch_key(session.device, far)
        assert key_now != key_far
        assert session.attachment_at(far) is not session.attachment

    def test_attachment_matches_uncached_derivation(self, session):
        cached = session.attachment_at(30.0)
        fresh = session.operator.attachment(session.device, 30.0)
        assert fresh.client_ip == cached.client_ip
        assert fresh.client_dns_ip == cached.client_dns_ip
        assert fresh.egress.ip == cached.egress.ip

    def test_route_cached_per_target(self, session, world):
        origin = session.origin(0.0)
        target = world.vantage.host.ip
        first = session.route_to(origin, target)
        assert session.route_to(origin, target) is first
        fresh = world.internet.route_view(origin, target)
        assert (fresh.admits, fresh.answers_ping, fresh.same_operator) == (
            first.admits, first.answers_ping, first.same_operator
        )

    def test_replica_lookup_cached(self, session, world):
        replica_ip = world.cdns["usonly"].all_replicas()[0].ip
        assert session._replica_at(replica_ip) is session._replica_at(replica_ip)
        assert session._replica_at("203.0.113.99") is None


class TestHelpers:
    def test_replica_addresses_dedup(self, session):
        first = session.dns_local("www.google.com", now=0.0)
        second = session.dns_local("www.google.com", now=1.0)
        addresses = session.replica_addresses([first, second])
        assert len(addresses) == len(set(addresses))
