"""Adaptive executor selection (serial vs parallel sharding)."""

import pytest

from repro.core.errors import ConfigError
from repro.measure.campaign import EXECUTOR_CHOICES, select_executor


class TestSelectExecutor:
    def test_explicit_requests_are_honoured(self):
        assert select_executor("serial", cpu_count=32, shard_count=6) == "serial"
        assert select_executor("parallel", cpu_count=1, shard_count=6) == "parallel"

    def test_auto_never_parallel_on_one_core(self):
        for shards in (1, 2, 6, 100):
            assert (
                select_executor("auto", cpu_count=1, shard_count=shards)
                == "serial"
            )

    def test_auto_never_parallel_with_one_shard(self):
        for cores in (1, 2, 64):
            assert (
                select_executor("auto", cpu_count=cores, shard_count=1)
                == "serial"
            )

    def test_auto_parallel_needs_cores_and_shards(self):
        assert select_executor("auto", cpu_count=2, shard_count=2) == "parallel"
        assert select_executor("auto", cpu_count=8, shard_count=6) == "parallel"

    def test_zero_cpu_count_reported_as_serial(self):
        # os.cpu_count() can return None; callers pass it straight through.
        assert select_executor("auto", cpu_count=0, shard_count=6) == "serial"

    def test_unknown_request_raises(self):
        with pytest.raises(ConfigError):
            select_executor("turbo")

    def test_choices_constant_matches_cli(self):
        assert EXECUTOR_CHOICES == ("auto", "serial", "parallel")


class TestStudyExecutor:
    def test_study_resolves_executor(self, monkeypatch):
        import repro.measure.campaign as campaign_module
        from repro import CellularDNSStudy, StudyConfig

        monkeypatch.setattr(campaign_module.os, "cpu_count", lambda: 1)
        study = CellularDNSStudy(StudyConfig.smoke_scale())
        assert study.executor == "serial"
        assert type(study.campaign).__name__ == "Campaign"

    def test_study_workers_do_not_force_parallel_on_one_core(self, monkeypatch):
        import repro.measure.campaign as campaign_module
        from repro import CellularDNSStudy, StudyConfig

        monkeypatch.setattr(campaign_module.os, "cpu_count", lambda: 1)
        config = StudyConfig.smoke_scale()
        config.workers = 4
        study = CellularDNSStudy(config)
        assert study.executor == "serial"

    def test_study_explicit_serial(self):
        from repro import CellularDNSStudy, StudyConfig

        config = StudyConfig.smoke_scale()
        config.executor = "serial"
        study = CellularDNSStudy(config)
        assert study.executor == "serial"

    def test_study_explicit_parallel(self):
        from repro import CellularDNSStudy, StudyConfig
        from repro.measure.campaign import ParallelCampaign

        config = StudyConfig.smoke_scale()
        config.executor = "parallel"
        config.workers = 2
        study = CellularDNSStudy(config)
        assert study.executor == "parallel"
        assert isinstance(study.campaign, ParallelCampaign)
        assert study.campaign.workers == 2


class TestCliExecutorFlag:
    def test_run_parser_accepts_executor(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--executor", "serial", "-o", "x.jsonl"]
        )
        assert args.executor == "serial"

    def test_run_parser_rejects_unknown_executor(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--executor", "turbo"])

    def test_bench_parser_accepts_smoke(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--smoke"])
        assert args.smoke is True
        assert args.output is None
