"""Adaptive executor selection (serial vs parallel vs sharded)."""

import pytest

from repro.core.errors import ConfigError
from repro.measure.campaign import (
    EXECUTOR_CHOICES,
    ExecutorDecision,
    select_executor,
)


class TestSelectExecutor:
    def test_explicit_requests_are_honoured(self):
        assert select_executor("serial", cpu_count=32, shard_count=6) == "serial"
        assert select_executor("parallel", cpu_count=1, shard_count=6) == "parallel"
        assert select_executor("sharded", cpu_count=1, shard_count=1) == "sharded"

    def test_auto_never_multiprocess_on_one_core(self):
        for shards in (1, 2, 6, 100):
            assert (
                select_executor("auto", cpu_count=1, shard_count=shards)
                == "serial"
            )

    def test_auto_never_multiprocess_with_one_range(self):
        for cores in (1, 2, 64):
            assert (
                select_executor("auto", cpu_count=cores, shard_count=1)
                == "serial"
            )

    def test_auto_shards_with_cores_and_ranges(self):
        # Sub-carrier sharding replaced the per-carrier pick: two cores
        # and two device ranges are enough, and more cores keep scaling
        # (workers size as min(cores, device_ranges), not carriers).
        # Without a campaign-size estimate auto assumes the campaign is
        # large enough to amortize worker bootstrap.
        assert select_executor("auto", cpu_count=2, shard_count=2) == "sharded"
        assert select_executor("auto", cpu_count=8, shard_count=6) == "sharded"
        assert select_executor("auto", cpu_count=64, shard_count=200) == "sharded"

    def test_zero_cpu_count_reported_as_serial(self):
        # os.cpu_count() can return None; callers pass it straight through.
        assert select_executor("auto", cpu_count=0, shard_count=6) == "serial"

    def test_unknown_request_raises(self):
        with pytest.raises(ConfigError):
            select_executor("turbo")

    def test_choices_constant_matches_cli(self):
        assert EXECUTOR_CHOICES == ("auto", "serial", "parallel", "sharded")


class TestAmortizationDecisionTable:
    """The auto policy across core counts and campaign sizes.

    Explicit ``bootstrap_s``/``per_experiment_s`` pin the estimates so
    the table does not depend on what this process happened to measure.
    """

    COSTS = dict(bootstrap_s=1.0, per_experiment_s=0.001)

    @pytest.mark.parametrize("experiments", [10, 10_000, 10_000_000])
    def test_one_core_is_always_serial(self, experiments):
        decision = select_executor(
            "auto", cpu_count=1, shard_count=8,
            experiments=experiments, **self.COSTS,
        )
        assert decision == "serial"
        assert "single core" in decision.reason

    @pytest.mark.parametrize("cpu_count", [2, 8])
    def test_small_campaigns_stay_serial_on_any_core_count(self, cpu_count):
        # 10 experiments ≈ 0.01s of simulate vs 1s per-worker bootstrap:
        # going multiprocess can only lose.
        decision = select_executor(
            "auto", cpu_count=cpu_count, shard_count=8,
            experiments=10, **self.COSTS,
        )
        assert decision == "serial"
        assert "amortize" in decision.reason

    @pytest.mark.parametrize("cpu_count", [2, 8])
    def test_large_campaigns_shard_on_multi_core(self, cpu_count):
        # 10k experiments ≈ 10s of simulate clears the 2x bootstrap bar.
        decision = select_executor(
            "auto", cpu_count=cpu_count, shard_count=8,
            experiments=10_000, **self.COSTS,
        )
        assert decision == "sharded"

    def test_threshold_scales_with_bootstrap_cost(self):
        # The same campaign flips to serial when bootstrap is pricier —
        # the measured-bootstrap recalibration in action.
        base = dict(cpu_count=8, shard_count=8, experiments=3_000,
                    per_experiment_s=0.001)
        assert select_executor("auto", bootstrap_s=1.0, **base) == "sharded"
        assert select_executor("auto", bootstrap_s=2.0, **base) == "serial"

    def test_decision_reports_its_inputs(self):
        decision = select_executor(
            "auto", cpu_count=8, shard_count=4,
            experiments=10_000, **self.COSTS,
        )
        assert isinstance(decision, ExecutorDecision)
        assert decision.executor == "sharded"
        assert decision.cpu_count == 8
        assert decision.shard_count == 4
        assert decision.bootstrap_s == 1.0
        assert decision.simulate_s == pytest.approx(10.0)
        described = decision.describe()
        assert described.startswith("executor sharded:")
        assert "bootstrap" in described

    def test_decision_is_a_plain_string_value(self):
        decision = select_executor("serial", cpu_count=1, shard_count=1)
        assert decision == "serial"
        assert str(decision) == "serial"
        assert decision.reason == "explicit request"


class TestDeviceRanges:
    def test_ranges_partition_population(self):
        from repro.measure.campaign import CampaignConfig

        config = CampaignConfig(
            devices_per_carrier={"att": 5, "verizon": 7}, range_size=3
        )
        ranges = config.device_ranges(["att", "verizon"])
        assert [(r.carrier_key, r.index, r.start, r.stop) for r in ranges] == [
            ("att", 0, 0, 3),
            ("att", 1, 3, 5),
            ("verizon", 0, 0, 3),
            ("verizon", 1, 3, 6),
            ("verizon", 2, 6, 7),
        ]
        assert [r.scope for r in ranges[:2]] == ["att/r0", "att/r1"]

    def test_ranges_independent_of_shard_count(self):
        # Shards only group ranges; boundaries come from the config.
        from repro.measure.campaign import CampaignConfig

        config = CampaignConfig(device_scale=1.0, range_size=32)
        keys = ["att", "sprint", "tmobile", "verizon", "skt", "lgu"]
        assert config.device_ranges(keys) == config.device_ranges(keys)


class TestStudyExecutor:
    def test_study_resolves_executor(self, monkeypatch):
        import repro.measure.campaign as campaign_module
        from repro import CellularDNSStudy, StudyConfig

        monkeypatch.setattr(campaign_module.os, "cpu_count", lambda: 1)
        study = CellularDNSStudy(StudyConfig.smoke_scale())
        assert study.executor == "serial"
        assert type(study.campaign).__name__ == "Campaign"

    def test_study_workers_do_not_force_parallel_on_one_core(self, monkeypatch):
        import repro.measure.campaign as campaign_module
        from repro import CellularDNSStudy, StudyConfig

        monkeypatch.setattr(campaign_module.os, "cpu_count", lambda: 1)
        config = StudyConfig.smoke_scale()
        config.workers = 4
        study = CellularDNSStudy(config)
        assert study.executor == "serial"

    def test_study_auto_shards_on_multi_core(self, monkeypatch):
        import repro.measure.campaign as campaign_module
        from repro import CellularDNSStudy, StudyConfig
        from repro.measure.campaign import ShardedCampaign

        monkeypatch.setattr(campaign_module.os, "cpu_count", lambda: 4)
        # The default study scale (~5k experiments) is big enough to
        # amortize worker bootstrap; smoke scale is not (tested below).
        study = CellularDNSStudy(StudyConfig())
        assert study.executor == "sharded"
        assert isinstance(study.campaign, ShardedCampaign)
        # Workers size from cores and ranges, not the carrier count.
        assert study.campaign.workers == min(4, len(study.campaign.ranges))

    def test_study_auto_keeps_tiny_campaigns_serial_on_multi_core(
        self, monkeypatch
    ):
        import repro.measure.campaign as campaign_module
        from repro import CellularDNSStudy, StudyConfig

        monkeypatch.setattr(campaign_module.os, "cpu_count", lambda: 4)
        study = CellularDNSStudy(StudyConfig.smoke_scale())
        # Cores are available, but a smoke campaign finishes serially
        # faster than the workers could even boot.
        assert study.executor == "serial"
        assert "amortize" in study.executor_decision.reason

    def test_study_explicit_serial(self):
        from repro import CellularDNSStudy, StudyConfig

        config = StudyConfig.smoke_scale()
        config.executor = "serial"
        study = CellularDNSStudy(config)
        assert study.executor == "serial"

    def test_study_explicit_parallel(self):
        from repro import CellularDNSStudy, StudyConfig
        from repro.measure.campaign import ParallelCampaign

        config = StudyConfig.smoke_scale()
        config.executor = "parallel"
        config.workers = 2
        study = CellularDNSStudy(config)
        assert study.executor == "parallel"
        assert isinstance(study.campaign, ParallelCampaign)
        assert study.campaign.workers == 2

    def test_study_explicit_sharded_with_shards(self):
        from repro import CellularDNSStudy, StudyConfig
        from repro.measure.campaign import ShardedCampaign

        config = StudyConfig.smoke_scale()
        config.executor = "sharded"
        config.workers = 2
        config.shards = 3
        study = CellularDNSStudy(config)
        assert study.executor == "sharded"
        assert isinstance(study.campaign, ShardedCampaign)
        assert study.campaign.workers == 2
        assert study.campaign.shards == min(3, len(study.campaign.ranges))


class TestCliExecutorFlag:
    def test_run_parser_accepts_executor(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--executor", "serial", "-o", "x.jsonl"]
        )
        assert args.executor == "serial"

    def test_run_parser_accepts_sharded_executor_and_shards(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--executor", "sharded", "--shards", "7", "-o", "x.jsonl"]
        )
        assert args.executor == "sharded"
        assert args.shards == 7

    def test_run_parser_rejects_unknown_executor(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--executor", "turbo"])

    def test_bench_parser_accepts_smoke(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--smoke"])
        assert args.smoke is True
        assert args.output is None
