"""Property-based equivalence of the event-driven probe scheduler.

The campaign used to walk one ``heapq.merge`` over per-device time
generators ordered by ``(time, device_id)``.  The event-driven core
replaces that with a single :class:`ProbeEventQueue` keyed
``(timestamp, carrier_key, device_index, sequence)``, pushing each
device's next event as its current one is popped.  These tests assert
the two produce the same global probe order for arbitrary populations
and schedules — the invariant the dataset byte-identity rests on.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure.scheduler import ExperimentSchedule, ProbeEventQueue

CARRIERS = ["att", "sprint", "tmobile", "verizon", "skt", "lgu"]

populations = st.dictionaries(
    st.sampled_from(CARRIERS),
    st.integers(min_value=1, max_value=5),
    min_size=1,
    max_size=6,
)
windows = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
)
intervals = st.floats(min_value=3600.0, max_value=86400.0, allow_nan=False)
duties = st.floats(min_value=0.3, max_value=1.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31)


def _devices(population):
    """(carrier, index, device_id) triples, campaign naming scheme."""
    return [
        (carrier, index, f"{carrier}-{index:03d}")
        for carrier in sorted(population)
        for index in range(population[carrier])
    ]


def _legacy_order(schedule, devices):
    """The old executor: one merged walk keyed (time, device_id)."""

    def stream(carrier, index, device_id):
        for sequence, at in enumerate(schedule.iter_times(device_id)):
            yield (at, device_id, carrier, index, sequence)

    return [
        (at, carrier, index, sequence)
        for at, device_id, carrier, index, sequence in heapq.merge(
            *(stream(*device) for device in devices),
            key=lambda event: (event[0], event[1]),
        )
    ]


def _event_order(schedule, devices):
    """The event-driven executor: incremental push/pop on one queue."""
    queue = ProbeEventQueue()
    for carrier, index, device_id in devices:
        times = schedule.iter_times(device_id)
        first = next(times, None)
        if first is not None:
            queue.push(first, carrier, index, 0, times)
    drained = []
    while queue:
        at, carrier, index, sequence, times = queue.pop()
        drained.append((at, carrier, index, sequence))
        following = next(times, None)
        if following is not None:
            queue.push(following, carrier, index, sequence + 1, times)
    return drained


class TestEventQueueEquivalence:
    @given(populations, windows, intervals, duties, seeds)
    @settings(max_examples=60, deadline=None)
    def test_matches_merged_generator_order(
        self, population, window, interval, duty, seed
    ):
        start, days = window
        schedule = ExperimentSchedule(
            start=start,
            end=start + days * 86400.0,
            seed=seed,
            interval_s=interval,
            duty_cycle=duty,
        )
        devices = _devices(population)
        assert _event_order(schedule, devices) == _legacy_order(
            schedule, devices
        )

    @given(populations, seeds)
    @settings(max_examples=30, deadline=None)
    def test_sequences_per_device_are_contiguous(self, population, seed):
        schedule = ExperimentSchedule(
            start=0.0, end=10 * 86400.0, seed=seed
        )
        devices = _devices(population)
        seen = {}
        for at, carrier, index, sequence in _event_order(schedule, devices):
            key = (carrier, index)
            assert sequence == seen.get(key, -1) + 1
            seen[key] = sequence


class TestProbeEventQueue:
    def test_orders_by_time_then_carrier_then_index_then_sequence(self):
        queue = ProbeEventQueue()
        queue.push(2.0, "att", 0, 0)
        queue.push(1.0, "verizon", 9, 3)
        queue.push(1.0, "att", 1, 0)
        queue.push(1.0, "att", 0, 1)
        queue.push(1.0, "att", 0, 0)
        drained = []
        while queue:
            drained.append(queue.pop()[:4])
        assert drained == [
            (1.0, "att", 0, 0),
            (1.0, "att", 0, 1),
            (1.0, "att", 1, 0),
            (1.0, "verizon", 9, 3),
            (2.0, "att", 0, 0),
        ]

    def test_peek_and_len(self):
        queue = ProbeEventQueue()
        assert not queue
        assert queue.peek() is None
        queue.push(5.0, "skt", 0, 0)
        assert len(queue) == 1
        assert queue.peek()[0] == 5.0
        queue.pop()
        assert not queue
