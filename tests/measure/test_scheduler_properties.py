"""Property-based invariants of the experiment scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure.scheduler import ExperimentSchedule

windows = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=1.0, max_value=90.0, allow_nan=False),
)
intervals = st.floats(min_value=600.0, max_value=86400.0, allow_nan=False)
duties = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
device_keys = st.text(
    alphabet="abcdefgh0123456789-", min_size=1, max_size=16
)


class TestScheduleProperties:
    @given(windows, intervals, duties, device_keys)
    @settings(max_examples=120)
    def test_times_sorted_and_in_window(self, window, interval, duty, key):
        start, days = window
        end = start + days * 86400.0
        schedule = ExperimentSchedule(
            start=start, end=end, seed=7, interval_s=interval, duty_cycle=duty
        )
        times = schedule.times_for(key)
        assert times == sorted(times)
        assert all(start <= t < end for t in times)

    @given(windows, intervals, device_keys)
    @settings(max_examples=60)
    def test_full_duty_cycle_density(self, window, interval, key):
        start, days = window
        end = start + days * 86400.0
        schedule = ExperimentSchedule(
            start=start, end=end, seed=7,
            interval_s=interval, duty_cycle=1.0, jitter_fraction=0.0,
        )
        slots = (end - start) / interval
        times = schedule.times_for(key)
        assert abs(len(times) - slots) <= 2

    @given(device_keys, device_keys)
    @settings(max_examples=40)
    def test_determinism_and_device_independence(self, first, second):
        schedule = ExperimentSchedule(start=0.0, end=10 * 86400.0, seed=3)
        assert schedule.times_for(first) == schedule.times_for(first)
        if first != second:
            # Phases differ almost surely; equality would mean the hash
            # ignores the device key.
            a = schedule.times_for(first)[:2]
            b = schedule.times_for(second)[:2]
            if a and b:
                assert a != b
