"""Warm worker pools: snapshot boots, contexts, reuse, repeated runs.

The multiprocess executors' contract is *byte identity under every
mechanism*: snapshot-booted workers vs rebuilt workers, fork vs spawn
start methods, any shard count, first run or fifteenth — all must
reproduce the serial campaign's bytes exactly.  These tests pin each
mechanism separately, plus the order-independence of CDN mapping
decisions that repeated-run determinism rests on.
"""

import multiprocessing
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.world import (
    WorldConfig,
    boot_world,
    build_world,
    snapshot_world,
)
from repro.measure.campaign import (
    Campaign,
    CampaignConfig,
    ParallelCampaign,
    ShardedCampaign,
    resolve_mp_context,
)

TINY = dict(device_scale=0.05, duration_days=4.0, interval_hours=24.0)

AVAILABLE_CONTEXTS = multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    "fork" not in AVAILABLE_CONTEXTS,
    reason="fork start method unavailable on this platform",
)


def _tiny_config() -> CampaignConfig:
    return CampaignConfig(**TINY)


@pytest.fixture(scope="module")
def serial_golden():
    """The tiny-scale serial campaign hash every executor must match."""
    campaign = Campaign(build_world(WorldConfig(seed=2014)), _tiny_config())
    return campaign.run().content_hash()


class TestSnapshotBootstrap:
    def test_pristine_world_snapshots(self):
        world = build_world(WorldConfig(seed=2014))
        snapshot = snapshot_world(world)
        assert snapshot is not None
        assert len(snapshot) > 0

    def test_used_world_refuses_to_snapshot(self):
        # A snapshot must capture first-run state; drawing from the
        # world moves it past that, so the snapshot layer refuses
        # (callers then ship the config and workers rebuild).  The seed
        # is one no other test snapshots, so the config-keyed cache
        # cannot satisfy the call first.
        world = build_world(WorldConfig(seed=432101))
        world.rng.stream("experiment", "probe", 0).random()
        assert snapshot_world(world) is None

    def test_boot_world_falls_back_without_snapshot(self):
        world, mode = boot_world(None, WorldConfig(seed=2014))
        assert mode == "rebuild"
        assert world.config.seed == 2014

    def test_boot_world_prefers_snapshot(self):
        config = WorldConfig(seed=2014)
        snapshot = snapshot_world(build_world(config))
        world, mode = boot_world(snapshot, config)
        assert mode == "snapshot"
        assert world.config.seed == 2014

    def test_garbage_snapshot_falls_back_to_rebuild(self):
        world, mode = boot_world(b"not a pickle", WorldConfig(seed=2014))
        assert mode == "rebuild"
        assert world.config.seed == 2014

    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        ecs=st.booleans(),
    )
    def test_snapshot_boot_and_rebuild_spill_identical_shard_jsonl(
        self, seed, ecs
    ):
        """The byte-identity assertion between worker boot modes.

        A snapshot-booted worker and a ``build_world`` worker must
        serialise identical shard JSONL for any world config — this is
        what makes the snapshot path an optimisation rather than a
        behaviour change.
        """
        config = WorldConfig(seed=seed, ecs_enabled=ecs)
        snapshot = snapshot_world(build_world(config))
        assert snapshot is not None
        booted, mode = boot_world(snapshot, config)
        assert mode == "snapshot"
        booted_campaign = Campaign(booted, _tiny_config())
        rebuilt_campaign = Campaign(build_world(config), _tiny_config())
        ranges = booted_campaign.config.device_ranges(
            list(booted_campaign.world.operators)
        )
        shard = ranges[: max(1, len(ranges) // 2)]
        booted_lines = [
            record.to_json_line()
            for record in booted_campaign._iter_execute(
                booted_campaign.devices_in_ranges(shard)
            )
        ]
        rebuilt_lines = [
            record.to_json_line()
            for record in rebuilt_campaign._iter_execute(
                rebuilt_campaign.devices_in_ranges(shard)
            )
        ]
        assert booted_lines == rebuilt_lines

    @settings(max_examples=2, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        context=st.sampled_from(
            [c for c in ("fork", "spawn") if c in AVAILABLE_CONTEXTS]
        ),
    )
    def test_snapshot_booted_pool_matches_rebuilt_serial(self, seed, context):
        """End-to-end: snapshot-booted workers vs a rebuilt serial world.

        The pool initializer ships the parent's snapshot, so every
        worker world is pickle-booted; the serial reference rebuilds
        from the config.  Their campaign bytes must agree for any seed
        under both fork and spawn (fork drops out of the strategy on
        platforms without it).
        """
        config = WorldConfig(seed=seed)
        golden = Campaign(build_world(config), _tiny_config()).run()
        with ShardedCampaign(
            build_world(config),
            _tiny_config(),
            workers=2,
            shards=2,
            mp_context=context,
        ) as campaign:
            assert campaign.world_snapshot is not None
            assert campaign.run().content_hash() == golden.content_hash()


class TestMpContexts:
    def test_auto_resolves_to_an_available_method(self):
        assert resolve_mp_context("auto") in AVAILABLE_CONTEXTS

    def test_spawn_is_always_available(self):
        assert resolve_mp_context("spawn") == "spawn"

    def test_unknown_context_rejected(self):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError):
            resolve_mp_context("thread")

    @pytest.mark.parametrize(
        "context",
        [
            pytest.param("fork", marks=needs_fork),
            "spawn",
        ],
    )
    def test_contexts_produce_identical_bytes(self, context, serial_golden):
        with ShardedCampaign(
            build_world(WorldConfig(seed=2014)),
            _tiny_config(),
            workers=2,
            shards=3,
            mp_context=context,
        ) as campaign:
            assert campaign.mp_context == context
            assert campaign.run().content_hash() == serial_golden


class TestShardCountInvariance:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 13])
    def test_any_shard_count_matches_serial(self, shards, serial_golden):
        # shards beyond the range count clamp (7 and 13 exercise that);
        # shards=1 exercises the serial fallback inside the sharded
        # executor.  Bytes must never move.
        with ShardedCampaign(
            build_world(WorldConfig(seed=2014)),
            _tiny_config(),
            workers=2,
            shards=shards,
        ) as campaign:
            with tempfile.TemporaryDirectory() as tmp:
                output = os.path.join(tmp, "campaign.jsonl")
                result = campaign.run_streaming(output)
            assert result["content_hash"] == serial_golden


class TestWarmPoolLifecycle:
    def test_second_run_reuses_the_pool(self, serial_golden):
        with ShardedCampaign(
            build_world(WorldConfig(seed=2014)),
            _tiny_config(),
            workers=2,
            shards=3,
        ) as campaign:
            assert campaign.run().content_hash() == serial_golden
            assert campaign.pool_stats == {"created": 1, "reused": 0}
            assert campaign.run().content_hash() == serial_golden
            assert campaign.pool_stats == {"created": 1, "reused": 1}

    def test_streaming_and_in_memory_share_one_pool(self, serial_golden):
        with ShardedCampaign(
            build_world(WorldConfig(seed=2014)),
            _tiny_config(),
            workers=2,
            shards=3,
        ) as campaign:
            with tempfile.TemporaryDirectory() as tmp:
                result = campaign.run_streaming(
                    os.path.join(tmp, "campaign.jsonl")
                )
            assert result["content_hash"] == serial_golden
            assert campaign.run().content_hash() == serial_golden
            assert campaign.pool_stats == {"created": 1, "reused": 1}

    def test_close_is_idempotent_and_reopens_on_demand(self, serial_golden):
        campaign = ShardedCampaign(
            build_world(WorldConfig(seed=2014)),
            _tiny_config(),
            workers=2,
            shards=3,
        )
        try:
            campaign.run()
            campaign.close()
            campaign.close()
            assert campaign._executor is None
            # A run after close transparently builds a fresh pool.
            assert campaign.run().content_hash() == serial_golden
            assert campaign.pool_stats["created"] == 2
        finally:
            campaign.close()

    def test_context_manager_closes_the_pool(self):
        with ShardedCampaign(
            build_world(WorldConfig(seed=2014)),
            _tiny_config(),
            workers=2,
            shards=3,
        ) as campaign:
            campaign.run()
            assert campaign._executor is not None
        assert campaign._executor is None

    def test_parallel_campaign_shares_the_lifecycle(self, serial_golden):
        with ParallelCampaign(
            build_world(WorldConfig(seed=2014)), _tiny_config(), workers=2
        ) as campaign:
            assert campaign.run().content_hash() == serial_golden
            assert campaign.run().content_hash() == serial_golden
            assert campaign.pool_stats == {"created": 1, "reused": 1}


class TestRepeatedRunsAreIdempotent:
    """Regression: repeated runs on one campaign object must not drift.

    The historical flake: repeated ``run_streaming`` calls on one
    :class:`ShardedCampaign` could hash differently because per-run
    task→worker assignment leaked into CDN mapping decisions (the /24
    anchor-order dependence, fixed by canonical block anchors) and
    because workers kept mutated state between runs (fixed by run
    tokens re-booting pristine campaigns).
    """

    def test_repeated_streaming_runs_hash_identically(self, serial_golden):
        with ShardedCampaign(
            build_world(WorldConfig(seed=2014)),
            _tiny_config(),
            workers=2,
            shards=3,
        ) as campaign:
            hashes = []
            for _ in range(3):
                with tempfile.TemporaryDirectory() as tmp:
                    result = campaign.run_streaming(
                        os.path.join(tmp, "campaign.jsonl")
                    )
                hashes.append(result["content_hash"])
        assert hashes == [serial_golden] * 3

    def test_repeated_serial_runs_hash_identically(self, serial_golden):
        campaign = Campaign(build_world(WorldConfig(seed=2014)), _tiny_config())
        assert campaign.run().content_hash() == serial_golden
        assert campaign.run().content_hash() == serial_golden

    def test_mixed_run_and_streaming_hash_identically(self, serial_golden):
        campaign = Campaign(build_world(WorldConfig(seed=2014)), _tiny_config())
        assert campaign.run().content_hash() == serial_golden
        with tempfile.TemporaryDirectory() as tmp:
            result = campaign.run_streaming(os.path.join(tmp, "campaign.jsonl"))
        assert result["content_hash"] == serial_golden


class TestMappingOrderIndependence:
    """The root cause of the repeated-run flake, pinned at its layer."""

    def test_canonical_anchor_is_constant_across_a_block(self):
        from repro.core.addressing import prefix24

        world = build_world(WorldConfig(seed=2014))
        blocks = {}
        for host in world.internet.hosts():
            blocks.setdefault(prefix24(host.ip), []).append(host.ip)
        multi = next(ips for ips in blocks.values() if len(ips) >= 2)
        anchors = {world.canonical_resolver_anchor(ip) for ip in multi}
        # Every member of a /24 canonicalises to one representative, so
        # whichever resolver queries first, the CDN decides for the
        # same anchor — decisions cannot encode arrival order.
        assert len(anchors) == 1
        assert anchors.pop() in multi

    def test_range_execution_order_cannot_move_bytes(self, serial_golden):
        """Execute ranges forward and reversed; merged bytes must agree.

        This is the in-process reconstruction of the flake: different
        shard→worker assignments present device ranges to the CDN in
        different orders, which only yields identical datasets if
        mapping decisions are order-independent.
        """
        import heapq

        from repro.measure.records import Dataset, record_event_key

        def merged_hash(reverse: bool) -> str:
            campaign = Campaign(
                build_world(WorldConfig(seed=2014)), _tiny_config()
            )
            ranges = campaign.config.device_ranges(
                list(campaign.world.operators)
            )
            if reverse:
                ranges = list(reversed(ranges))
            streams = [
                campaign._execute(campaign.devices_in_ranges([item]))
                for item in ranges
            ]
            merged = list(heapq.merge(*streams, key=record_event_key))
            return Dataset(
                experiments=merged, metadata={}
            ).content_hash()

        forward = merged_hash(reverse=False)
        reverse = merged_hash(reverse=True)
        assert forward == reverse == serial_golden


class TestCliAutoExecutorLogging:
    def test_run_logs_the_auto_decision(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "campaign.jsonl"
        status = main([
            "run",
            "--scale", "0.05",
            "--days", "4",
            "--interval-hours", "24",
            "--output", str(output),
        ])
        assert status == 0
        err = capsys.readouterr().err
        assert "executor " in err
        # The reasoning names the decision inputs, not just the choice.
        assert "bootstrap" in err or "core" in err or "range" in err
