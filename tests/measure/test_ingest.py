"""JSONL ingest fast path: edge cases and the from_json oracle.

:meth:`Dataset.load_jsonl` decodes canonical lines through the
slot-assigning fast decoders and falls back to
:meth:`ExperimentRecord.from_json` for anything else;
:meth:`Dataset.load_jsonl_reference` always takes the slow path.  The
two must agree on every input a campaign can archive — including the
awkward ones: metadata-only files, NaN/inf floats, unicode carriers,
blank lines, and hand-edited non-canonical records.
"""

from __future__ import annotations

import io
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import DatasetError
from repro.measure.records import Dataset, ExperimentRecord

from tests.measure.test_records import _experiment_records, _record


def _dump(dataset: Dataset) -> str:
    buffer = io.StringIO()
    dataset.dump_jsonl(buffer)
    return buffer.getvalue()


def _assert_paths_agree(text: str) -> Dataset:
    """Both ingest paths on the same text: equal records and metadata."""
    fast = Dataset.loads_jsonl(text)
    slow = Dataset.load_jsonl_reference(text.split("\n"))
    assert fast.metadata == slow.metadata
    assert len(fast) == len(slow)
    assert fast.content_hash() == slow.content_hash()
    return fast


class TestIngestEdgeCases:
    def test_metadata_only_dataset(self):
        text = _dump(Dataset(metadata={"seed": 7, "note": "no records"}))
        loaded = _assert_paths_agree(text)
        assert loaded.metadata == {"seed": 7, "note": "no records"}
        assert len(loaded) == 0

    def test_empty_text(self):
        loaded = _assert_paths_agree("")
        assert len(loaded) == 0
        assert loaded.metadata == {}

    def test_blank_and_padded_lines_skipped(self):
        record = _record()
        text = "\n\n  " + record.to_json_line() + "  \n\n"
        loaded = _assert_paths_agree(text)
        assert loaded.experiments == [record]

    def test_nan_and_inf_floats_roundtrip(self):
        record = _record()
        record.started_at = float("nan")
        record.latitude = float("inf")
        record.longitude = float("-inf")
        record.resolutions[0].resolution_ms = float("nan")
        record.pings[0].rtt_ms = float("inf")
        dataset = Dataset(experiments=[record])
        text = _dump(dataset)
        loaded = _assert_paths_agree(text)
        clone = loaded.experiments[0]
        assert math.isnan(clone.started_at)
        assert clone.latitude == float("inf")
        assert clone.longitude == float("-inf")
        assert math.isnan(clone.resolutions[0].resolution_ms)
        # The re-serialised line is byte-identical despite NaN != NaN.
        assert clone.to_json_line() == record.to_json_line()

    def test_unicode_carriers_and_domains(self):
        record = _record(carrier="케이티-kt")
        record.device_id = "dev-é中- "
        record.resolutions[0].domain = "www.bücher.example"
        dataset = Dataset(experiments=[record], metadata={"país": "한국"})
        loaded = _assert_paths_agree(_dump(dataset))
        clone = loaded.experiments[0]
        assert clone.carrier == "케이티-kt"
        assert clone.device_id == "dev-é中- "
        assert clone.resolutions[0].domain == "www.bücher.example"
        assert loaded.metadata == {"país": "한국"}
        assert loaded.by_carrier()["케이티-kt"] == [clone]

    def test_non_canonical_line_falls_back(self):
        # Hand-edited key order is not the canonical emitter shape; the
        # fast ingest must hand it to from_json, not mis-decode it.
        record = _record()
        import json

        payload = json.loads(record.to_json_line())
        reordered = json.dumps(dict(reversed(list(payload.items()))))
        loaded = _assert_paths_agree(reordered + "\n")
        assert loaded.experiments == [record]

    def test_extra_unknown_key_still_loads(self):
        import json

        payload = json.loads(_record().to_json_line())
        payload["future_field"] = {"v": 2}
        text = json.dumps(payload) + "\n"
        loaded = _assert_paths_agree(text)
        assert loaded.experiments == [_record()]

    def test_bad_line_raises_dataset_error(self):
        with pytest.raises(DatasetError):
            Dataset.loads_jsonl("{not json}\n")
        with pytest.raises(DatasetError):
            Dataset.load_jsonl_reference(["{not json}"])

    def test_missing_required_field_raises(self):
        with pytest.raises(DatasetError):
            Dataset.loads_jsonl('{"device_id": "only"}\n')

    @given(st.lists(_experiment_records, max_size=5))
    def test_randomised_records_agree(self, records):
        dataset = Dataset(experiments=records, metadata={"seed": 1})
        text = _dump(dataset)
        fast = Dataset.loads_jsonl(text)
        slow = Dataset.load_jsonl_reference(text.split("\n"))
        # Record-level equality fails on NaN fields; the serialised
        # bodies are the NaN-safe identity.
        assert fast.content_hash() == slow.content_hash()
        assert fast.content_hash() == dataset.content_hash()
        assert fast.metadata == dataset.metadata

    def test_file_roundtrip_with_unicode(self, tmp_path):
        dataset = Dataset(
            experiments=[_record(carrier="skt-유심")],
            metadata={"label": "ünïcode"},
        )
        path = tmp_path / "campaign.jsonl"
        dataset.save(str(path))
        loaded = Dataset.load(str(path))
        assert loaded.experiments == dataset.experiments
        assert loaded.metadata == dataset.metadata
