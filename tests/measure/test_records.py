"""Measurement records and dataset persistence."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import DatasetError
from repro.measure.records import (
    Dataset,
    ExperimentRecord,
    HttpRecord,
    PingRecord,
    ResolutionRecord,
    ResolverIdRecord,
    TracerouteRecord,
    merge_shard_jsonl,
    record_event_key,
)


def _record(device="dev-1", carrier="att", sequence=0, at=0.0):
    return ExperimentRecord(
        device_id=device,
        carrier=carrier,
        country="US",
        sequence=sequence,
        started_at=at,
        latitude=41.9,
        longitude=-87.6,
        technology="LTE",
        generation="4G",
        client_ip="16.2.0.9",
        resolutions=[
            ResolutionRecord(
                domain="m.yelp.com",
                resolver_kind="local",
                resolution_ms=42.0,
                addresses=["16.0.7.1"],
                cname_chain=["m-yelp-com.edge.continental-sim.net"],
            )
        ],
        pings=[PingRecord(target_ip="16.0.7.1", target_kind="replica", rtt_ms=30.0)],
        traceroutes=[
            TracerouteRecord(
                target_ip="16.0.7.1",
                target_kind="replica",
                hops=[[1, None, None], [2, "16.2.1.1", 20.0]],
            )
        ],
        http_gets=[
            HttpRecord(
                replica_ip="16.0.7.1", domain="m.yelp.com",
                resolver_kind="local", ttfb_ms=70.0,
            )
        ],
        resolver_ids=[
            ResolverIdRecord(
                resolver_kind="local",
                configured_ip="16.2.11.1",
                observed_external_ip="16.2.12.7",
            )
        ],
    )


class TestExperimentRecord:
    def test_json_roundtrip(self):
        record = _record()
        clone = ExperimentRecord.from_json(record.to_json())
        assert clone == record

    def test_resolutions_via(self):
        record = _record()
        assert len(record.resolutions_via("local")) == 1
        assert record.resolutions_via("google") == []

    def test_resolver_id_lookup(self):
        record = _record()
        assert record.resolver_id("local").observed_external_ip == "16.2.12.7"
        assert record.resolver_id("google") is None

    def test_bad_json_raises(self):
        with pytest.raises(DatasetError):
            ExperimentRecord.from_json("{not json")

    def test_missing_fields_raise(self):
        with pytest.raises(DatasetError):
            ExperimentRecord.from_json('{"device_id": "x"}')

    def test_fault_fields_roundtrip(self):
        record = _record()
        record.resolutions[0].outcome = "timed_out"
        record.resolutions[0].retries = 2
        record.pings[0].outcome = "lost"
        record.pings[0].retries = 1
        record.traceroutes[0].outcome = "lost"
        record.http_gets[0].outcome = "timed_out"
        clone = ExperimentRecord.from_json(record.to_json())
        assert clone == record
        # The fast loader takes the from_json fallback for fault lines.
        loaded = Dataset.load_jsonl([record.to_json_line()])
        assert loaded.experiments[0] == record

    def test_fault_free_wire_has_no_fault_keys(self):
        # Default-valued outcome/retries are pruned from the wire, so a
        # fault-free campaign's bytes match the pre-transport engine.
        line = _record().to_json_line()
        assert '"outcome"' not in line
        assert '"retries"' not in line
        assert _record().to_json_line_reference() == line

    def test_delivery_outcome_inference(self):
        record = _record()
        # Explicit outcome wins; otherwise inferred from the legacy fields.
        assert record.resolutions[0].delivery_outcome == "delivered"
        assert record.pings[0].delivery_outcome == "delivered"
        record.pings[0].rtt_ms = None
        assert record.pings[0].delivery_outcome == "timed_out"
        record.pings[0].outcome = "lost"
        assert record.pings[0].delivery_outcome == "lost"
        record.resolutions[0].rcode = "UNREACHABLE"
        assert record.resolutions[0].delivery_outcome == "lost"
        record.resolutions[0].rcode = "TIMEOUT"
        assert record.resolutions[0].delivery_outcome == "timed_out"

    def test_traceroute_hop_ips(self):
        record = _record()
        assert record.traceroutes[0].hop_ips() == ["16.2.1.1"]

    def test_ping_responded(self):
        assert PingRecord("1.2.3.4", "t", rtt_ms=1.0).responded
        assert not PingRecord("1.2.3.4", "t").responded


_text = st.text(max_size=20)
_any_float = st.floats(allow_nan=True, allow_infinity=True, width=64)
_opt_float = st.none() | _any_float
# Fault fields ride the wire only when set (None / 0 are pruned by the
# emitters); the strategies cover both shapes so the fast serializer is
# held to the oracle on legacy and fault lines alike.
_outcome = st.none() | st.sampled_from(
    ["delivered", "filtered", "timed_out", "lost"]
)
_retries = st.integers(0, 3)

_resolutions = st.builds(
    ResolutionRecord,
    domain=_text,
    resolver_kind=st.sampled_from(["local", "google", "opendns"]),
    resolution_ms=_any_float,
    addresses=st.lists(_text, max_size=3),
    cname_chain=st.lists(_text, max_size=3),
    attempt=st.integers(-10, 10),
    rcode=_text,
    outcome=_outcome,
    retries=_retries,
)
_pings = st.builds(
    PingRecord,
    target_ip=_text,
    target_kind=_text,
    rtt_ms=_opt_float,
    outcome=_outcome,
    retries=_retries,
)
_hops = st.lists(
    st.lists(
        st.none() | st.integers(-1000, 1000) | _any_float | _text, max_size=4
    ),
    max_size=4,
)
_traceroutes = st.builds(
    TracerouteRecord,
    target_ip=_text,
    target_kind=_text,
    hops=_hops,
    reached=st.booleans(),
    outcome=_outcome,
)
_http_gets = st.builds(
    HttpRecord,
    replica_ip=_text,
    domain=_text,
    resolver_kind=_text,
    ttfb_ms=_opt_float,
    outcome=_outcome,
    retries=_retries,
)
_resolver_ids = st.builds(
    ResolverIdRecord,
    resolver_kind=_text,
    configured_ip=_text,
    observed_external_ip=st.none() | _text,
    resolution_ms=_opt_float,
)
_experiment_records = st.builds(
    ExperimentRecord,
    device_id=_text,
    carrier=_text,
    country=_text,
    sequence=st.integers(-(10**9), 10**9),
    started_at=_any_float,
    latitude=_any_float,
    longitude=_any_float,
    technology=_text,
    generation=_text,
    client_ip=_text,
    resolutions=st.lists(_resolutions, max_size=3),
    pings=st.lists(_pings, max_size=3),
    traceroutes=st.lists(_traceroutes, max_size=2),
    http_gets=st.lists(_http_gets, max_size=3),
    resolver_ids=st.lists(_resolver_ids, max_size=3),
)


class TestFastSerializer:
    """The fast emitter against the ``asdict`` oracle, byte for byte."""

    def test_fixture_record_identical(self):
        record = _record()
        assert record.to_json_line() == record.to_json_line_reference()

    def test_awkward_scalars_identical(self):
        record = _record()
        record.device_id = 'quote " backslash \\ unicode é中\x00'
        record.started_at = float("nan")
        record.latitude = float("inf")
        record.longitude = float("-inf")
        record.pings[0].rtt_ms = None
        record.traceroutes[0].hops = [
            [1, None, float("nan")],
            [True, False, -0.0, "tab\there"],
        ]
        assert record.to_json_line() == record.to_json_line_reference()

    @given(_experiment_records)
    def test_randomised_records_identical(self, record):
        assert record.to_json_line() == record.to_json_line_reference()

    @given(_experiment_records)
    def test_fast_line_parses_back(self, record):
        import json as jsonlib

        parsed = jsonlib.loads(record.to_json_line())
        assert parsed == jsonlib.loads(record.to_json_line_reference())


class TestDataset:
    def _dataset(self):
        dataset = Dataset(metadata={"seed": 1})
        dataset.add(_record("dev-1", "att", 0, 0.0))
        dataset.add(_record("dev-1", "att", 1, 3600.0))
        dataset.add(_record("dev-2", "skt", 0, 100.0))
        return dataset

    def test_grouping(self):
        dataset = self._dataset()
        assert set(dataset.by_carrier()) == {"att", "skt"}
        assert len(dataset.by_device()["dev-1"]) == 2

    def test_by_device_sorted_by_time(self):
        dataset = self._dataset()
        times = [r.started_at for r in dataset.by_device()["dev-1"]]
        assert times == sorted(times)

    def test_carriers_and_devices(self):
        dataset = self._dataset()
        assert dataset.carriers() == ["att", "skt"]
        assert dataset.device_ids() == ["dev-1", "dev-2"]

    def test_filter(self):
        dataset = self._dataset()
        only_att = dataset.filter(lambda record: record.carrier == "att")
        assert len(only_att) == 2
        assert only_att.metadata == dataset.metadata

    def test_jsonl_roundtrip_with_metadata(self):
        dataset = self._dataset()
        buffer = io.StringIO()
        written = dataset.dump_jsonl(buffer)
        assert written == 3
        loaded = Dataset.load_jsonl(buffer.getvalue().splitlines())
        assert len(loaded) == 3
        assert loaded.metadata == {"seed": 1}
        assert loaded.experiments == dataset.experiments

    def test_save_and_load_file(self, tmp_path):
        dataset = self._dataset()
        path = tmp_path / "campaign.jsonl"
        dataset.save(str(path))
        loaded = Dataset.load(str(path))
        assert loaded.experiments == dataset.experiments

    def test_load_tolerates_blank_lines_and_trailing_newlines(self):
        dataset = self._dataset()
        buffer = io.StringIO()
        dataset.dump_jsonl(buffer)
        lines = buffer.getvalue().splitlines()
        dirty = ["", lines[0], "   ", *lines[1:], "\t", "", ""]
        loaded = Dataset.load_jsonl(dirty)
        assert loaded.experiments == dataset.experiments
        assert loaded.metadata == dataset.metadata

    def test_content_hash_ignores_metadata(self):
        plain = self._dataset()
        annotated = Dataset(
            experiments=list(plain.experiments),
            metadata={"seed": 1, "workers": 4},
        )
        assert plain.content_hash() == annotated.content_hash()

    def test_content_hash_tracks_content(self):
        first = self._dataset()
        second = self._dataset()
        assert first.content_hash() == second.content_hash()
        second.experiments[0].resolutions[0].resolution_ms += 1.0
        assert first.content_hash() != second.content_hash()

    def test_content_hash_sensitive_to_order(self):
        dataset = self._dataset()
        reordered = Dataset(experiments=list(reversed(dataset.experiments)))
        assert dataset.content_hash() != reordered.content_hash()

    def test_content_hash_handles_nan(self):
        withnan = Dataset(experiments=[_record()])
        withnan.experiments[0].resolutions[0].resolution_ms = float("nan")
        # NaN != NaN under equality, but the serialised text is stable.
        assert withnan.content_hash() == withnan.content_hash()

    def _merged_dataset(self):
        """The fixture dataset in merge (event-key) order."""
        ordered = sorted(self._dataset().experiments, key=record_event_key)
        return Dataset(experiments=ordered, metadata={"seed": 1})

    def _shard_streams(self, dataset, blanks=False):
        lines = [record.to_json_line() for record in dataset.experiments]
        shards = [lines[0::2], lines[1::2]]
        if blanks:
            shards = [
                ["", *(line + "\n" for line in shard), "  ", "\n"]
                for shard in shards
            ]
        return shards

    def test_merge_shard_jsonl_matches_dataset(self):
        dataset = self._merged_dataset()
        out = io.StringIO()
        count, digest = merge_shard_jsonl(
            (iter(shard) for shard in self._shard_streams(dataset)),
            out,
            metadata={"seed": 1},
        )
        assert count == 3
        assert digest == dataset.content_hash()
        loaded = Dataset.load_jsonl(out.getvalue().splitlines())
        assert loaded.experiments == dataset.experiments
        assert loaded.metadata == {"seed": 1, "experiments": 3}

    def test_merge_shard_jsonl_tolerates_blank_lines(self):
        dataset = self._merged_dataset()
        clean, dirty = io.StringIO(), io.StringIO()
        merge_shard_jsonl(
            (iter(s) for s in self._shard_streams(dataset)), clean
        )
        count, digest = merge_shard_jsonl(
            (iter(s) for s in self._shard_streams(dataset, blanks=True)),
            dirty,
        )
        assert count == 3
        assert digest == dataset.content_hash()
        assert dirty.getvalue() == clean.getvalue()

    def test_merge_shard_jsonl_feeds_sink_each_written_line(self):
        dataset = self._merged_dataset()
        seen = []
        out = io.StringIO()
        count, digest = merge_shard_jsonl(
            (iter(s) for s in self._shard_streams(dataset, blanks=True)),
            out,
            sink=seen.append,
        )
        assert count == len(seen) == 3
        assert seen == [r.to_json_line() for r in dataset.experiments]
        assert digest == dataset.content_hash()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["att", "skt", "lgu"]),
                st.integers(0, 5),
                st.floats(0, 1e6, allow_nan=False),
            ),
            max_size=12,
        )
    )
    def test_roundtrip_property(self, specs):
        dataset = Dataset()
        for index, (carrier, seq, at) in enumerate(specs):
            dataset.add(_record(f"dev-{index % 3}", carrier, seq, at))
        buffer = io.StringIO()
        dataset.dump_jsonl(buffer)
        loaded = Dataset.load_jsonl(buffer.getvalue().splitlines())
        assert loaded.experiments == dataset.experiments
