"""Pluggable dataset backends, per-shard checkpoints, resume, reconcile.

The contracts under test:

* **backend equivalence** — every registered backend (JSONL, SQLite,
  binary columnar) roundtrips a campaign dataset with the exact
  ``Dataset.content_hash`` of the in-memory records, and the JSONL
  backend's archive bytes are unchanged from the historical
  ``dump_jsonl`` format (the reference every golden pins);
* **truncation handling** — a torn partial final line (crash
  mid-write) is detected, reported with the clean-record count, and
  loadable as an incomplete prefix, instead of raising mid-parse;
* **crash/resume identity** — a checkpointed run interrupted by an
  injected crash (in-process, or a worker killed mid-spill with a
  partial shard left on disk) resumes to an archive byte-identical to
  an uninterrupted run, for every backend and shard count ∈ {1,2,3,7};
* **reconcile** — the healing pass detects missing/truncated/corrupt
  committed shards, quarantines (never deletes) the evidence, re-runs
  exactly those shards and restores the reference hash;
* **cache equivalence** — the analysis result cache keys on
  ``Dataset.content_hash``, so the same campaign archived via JSONL
  and SQLite hits one cache entry.
"""

import io
import os

import pytest

from repro.analysis.result_cache import AnalysisResultCache
from repro.core.errors import DatasetError, TruncatedDatasetError
from repro.core.world import WorldConfig, build_world
from repro.measure.backends import (
    BACKEND_CHOICES,
    get_backend,
    load_dataset,
    resolve_backend,
    sniff_backend,
)
from repro.measure.campaign import Campaign, CampaignConfig, ShardedCampaign
from repro.measure.checkpoint import (
    CampaignInterrupted,
    CheckpointStore,
    CrashPoint,
    default_checkpoint_dir,
    reconcile,
    run_checkpointed,
)
from repro.measure.records import Dataset
from repro.measure.validate import verify_manifests

#: Same forced-mid-carrier-split population as test_sharded_campaign:
#: nine device ranges under range_size=2, so shard plans of 1/2/3/7
#: tasks all exercise real multi-shard commits and merges.
SMOKE = dict(
    devices_per_carrier={
        "att": 3,
        "sprint": 1,
        "tmobile": 2,
        "verizon": 5,
        "skt": 1,
        "lgu": 1,
    },
    duration_days=6.0,
    interval_hours=24.0,
    range_size=2,
)
SEED = 977


def _world():
    return build_world(WorldConfig(seed=SEED))


def _config():
    return CampaignConfig(**SMOKE)


@pytest.fixture(scope="module")
def serial_dataset():
    return Campaign(_world(), _config()).run()


@pytest.fixture(scope="module")
def reference_hash(serial_dataset):
    return serial_dataset.content_hash()


# -- backend roundtrips -------------------------------------------------------


class TestBackendRoundtrips:
    @pytest.mark.parametrize("name", BACKEND_CHOICES)
    def test_roundtrip_preserves_content_hash_and_metadata(
        self, name, serial_dataset, reference_hash, tmp_path
    ):
        backend = get_backend(name)
        path = str(tmp_path / f"archive{backend.shard_extension}")
        serial_dataset.save(path, backend=name)
        loaded = Dataset.load(path, backend=name)
        assert loaded.content_hash() == reference_hash
        assert loaded.metadata["seed"] == SEED
        assert loaded.metadata["experiments"] == len(serial_dataset)

    def test_jsonl_backend_bytes_match_dump_jsonl(
        self, serial_dataset, tmp_path
    ):
        # The JSONL backend is the byte reference: Dataset.save must
        # emit exactly the historical dump_jsonl stream.
        path = str(tmp_path / "archive.jsonl")
        serial_dataset.save(path)
        buffer = io.StringIO()
        serial_dataset.dump_jsonl(buffer)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == buffer.getvalue()

    @pytest.mark.parametrize("name", BACKEND_CHOICES)
    def test_sniffing_identifies_every_backend(
        self, name, serial_dataset, tmp_path
    ):
        backend = get_backend(name)
        path = str(tmp_path / f"archive{backend.shard_extension}")
        serial_dataset.save(path, backend=name)
        assert sniff_backend(path).name == name
        # Dataset.load with no backend hint reads any layout.
        assert Dataset.load(path).content_hash() == serial_dataset.content_hash()

    def test_resolve_backend_prefers_name_then_extension(self):
        assert resolve_backend("sqlite", "x.jsonl").name == "sqlite"
        assert resolve_backend(None, "x.sqlite").name == "sqlite"
        assert resolve_backend(None, "x.col").name == "columnar"
        assert resolve_backend(None, "x.anything").name == "jsonl"
        with pytest.raises(DatasetError):
            resolve_backend("parquet")

    def test_run_streaming_backend_param_is_hash_invariant(
        self, reference_hash, tmp_path
    ):
        for name in BACKEND_CHOICES:
            backend = get_backend(name)
            path = str(tmp_path / f"stream{backend.shard_extension}")
            campaign = ShardedCampaign(_world(), _config(), workers=0)
            result = campaign.run_streaming(path, backend=name)
            assert result["content_hash"] == reference_hash
            assert load_dataset(path).content_hash() == reference_hash

    def test_columnar_key_columns_match_records(
        self, serial_dataset, tmp_path
    ):
        backend = get_backend("columnar")
        path = str(tmp_path / "archive.col")
        serial_dataset.save(path, backend="columnar")
        columns = backend.columns(path)
        assert list(columns["started_at"]) == [
            r.started_at for r in serial_dataset
        ]
        assert columns["carrier"] == [r.carrier for r in serial_dataset]
        assert list(columns["sequence"]) == [
            r.sequence for r in serial_dataset
        ]


# -- truncated-tail handling (satellite 1) ------------------------------------


class TestTruncatedTail:
    def _lines(self, serial_dataset):
        return [r.to_json_line() for r in serial_dataset.experiments]

    def test_final_partial_line_raises_truncated_error(self, serial_dataset):
        lines = self._lines(serial_dataset)
        torn = lines[:5] + [lines[5][: len(lines[5]) // 2]]
        with pytest.raises(TruncatedDatasetError) as excinfo:
            Dataset.load_jsonl(torn)
        assert excinfo.value.clean_records == 5
        assert excinfo.value.partial_line == torn[-1]
        # TruncatedDatasetError stays a DatasetError: existing callers
        # catching the base class keep working.
        assert isinstance(excinfo.value, DatasetError)

    def test_allow_truncated_loads_clean_prefix(self, serial_dataset):
        lines = self._lines(serial_dataset)
        torn = lines[:5] + [lines[5][: len(lines[5]) // 2]]
        dataset = Dataset.load_jsonl(torn, allow_truncated=True)
        assert len(dataset) == 5
        assert dataset.truncated_tail == torn[-1]
        clean = Dataset.load_jsonl(lines[:5])
        assert dataset.content_hash() == clean.content_hash()

    def test_mid_archive_corruption_still_raises_dataset_error(
        self, serial_dataset
    ):
        lines = self._lines(serial_dataset)
        corrupt = [lines[0], "{broken", lines[1]]
        with pytest.raises(DatasetError) as excinfo:
            Dataset.load_jsonl(corrupt)
        assert not isinstance(excinfo.value, TruncatedDatasetError)

    def test_merge_over_torn_stream_reports_clean_count(self, serial_dataset):
        lines = self._lines(serial_dataset)
        # rstrip the brace so the tear cannot coincidentally land on a
        # nested object boundary and still look closed.  Two live
        # streams keep the merge heap computing keys (heapq.merge stops
        # keying once a single iterator remains).
        torn_line = lines[4][: len(lines[4]) // 2].rstrip("}")
        stream_a = [lines[0], lines[2], torn_line]
        stream_b = [lines[1], lines[3]] + lines[5:]
        out = io.StringIO()
        from repro.measure.records import merge_shard_jsonl

        with pytest.raises(TruncatedDatasetError) as excinfo:
            merge_shard_jsonl([iter(stream_a), iter(stream_b)], out)
        assert excinfo.value.clean_records <= 4
        assert excinfo.value.partial_line == torn_line

    def test_single_stream_merge_still_detects_tear(self, serial_dataset):
        # heapq.merge skips key computation once one iterator remains,
        # so the guard must also cover a one-stream merge.
        lines = self._lines(serial_dataset)
        torn_line = lines[3][: len(lines[3]) // 2].rstrip("}")
        from repro.measure.records import merge_shard_jsonl

        with pytest.raises(TruncatedDatasetError) as excinfo:
            merge_shard_jsonl([iter(lines[:3] + [torn_line])], io.StringIO())
        assert excinfo.value.clean_records == 3
        assert excinfo.value.partial_line == torn_line

    @pytest.mark.parametrize("name", BACKEND_CHOICES)
    def test_backend_scan_classifies_clean_and_missing(
        self, name, serial_dataset, tmp_path
    ):
        backend = get_backend(name)
        path = str(tmp_path / f"archive{backend.shard_extension}")
        serial_dataset.save(path, backend=name)
        scan = backend.scan(path)
        assert scan.status == "ok"
        assert scan.records == len(serial_dataset)
        assert scan.sha256 == serial_dataset.content_hash()
        assert backend.scan(path + ".nope").status == "missing"

    def test_jsonl_scan_flags_torn_tail(self, serial_dataset, tmp_path):
        backend = get_backend("jsonl")
        path = str(tmp_path / "archive.jsonl")
        serial_dataset.save(path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-31])
        scan = backend.scan(path)
        assert scan.status == "truncated"
        assert 0 < scan.records < len(serial_dataset)


# -- crash / resume matrix (satellite 3) --------------------------------------


class TestCrashResume:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    @pytest.mark.parametrize("name", BACKEND_CHOICES)
    def test_crash_then_resume_is_byte_identical(
        self, name, shards, reference_hash, tmp_path
    ):
        backend = get_backend(name)
        output = str(tmp_path / f"campaign{backend.shard_extension}")
        campaign = ShardedCampaign(
            _world(), _config(), workers=0, shards=shards
        )
        crash_shard = min(shards - 1, 2)
        with pytest.raises(CampaignInterrupted):
            run_checkpointed(
                campaign, output, backend=name,
                crash=CrashPoint(shard=crash_shard, after_records=2),
            )
        # The crash left the victim shard uncommitted (a partial spill)
        # and everything before it durably committed.
        store = CheckpointStore(default_checkpoint_dir(output), backend)
        assert not store.is_committed(crash_shard)
        resumed = run_checkpointed(campaign, output, backend=name, resume=True)
        assert resumed["content_hash"] == reference_hash
        assert resumed["total_shards"] == shards
        assert load_dataset(output).content_hash() == reference_hash

    def test_interrupt_after_n_commits_then_resume(
        self, reference_hash, tmp_path
    ):
        output = str(tmp_path / "campaign.jsonl")
        campaign = ShardedCampaign(_world(), _config(), workers=0)
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_checkpointed(campaign, output, stop_after_shards=3)
        assert excinfo.value.committed == 3
        resumed = run_checkpointed(campaign, output, resume=True)
        assert resumed["resumed_shards"] == 3
        assert resumed["executed_shards"] == campaign.shards - 3
        assert resumed["content_hash"] == reference_hash

    def test_worker_killed_mid_spill_leaves_partial_shard(
        self, reference_hash, tmp_path
    ):
        # The real thing: a pool worker dies with os._exit mid-spill.
        # Its flushed partial shard stays on disk uncommitted; the pool
        # breaks; resume re-runs the unfinished shards byte-identically.
        output = str(tmp_path / "campaign.jsonl")
        campaign = ShardedCampaign(_world(), _config(), workers=2)
        try:
            with pytest.raises(CampaignInterrupted):
                run_checkpointed(
                    campaign, output,
                    crash=CrashPoint(shard=4, after_records=2, hard_kill=True),
                )
            shards_dir = default_checkpoint_dir(output)
            leftovers = [
                name for name in os.listdir(shards_dir)
                if name.endswith(".tmp")
            ]
            assert leftovers, "the killed worker left no partial spill"
            resumed = run_checkpointed(campaign, output, resume=True)
            assert resumed["content_hash"] == reference_hash
        finally:
            campaign.close()

    def test_fresh_run_refuses_existing_checkpoints(self, tmp_path):
        output = str(tmp_path / "campaign.jsonl")
        campaign = ShardedCampaign(_world(), _config(), workers=0)
        run_checkpointed(campaign, output)
        with pytest.raises(DatasetError, match="resume"):
            run_checkpointed(campaign, output)

    def test_resume_refuses_foreign_fingerprint(self, tmp_path):
        output = str(tmp_path / "campaign.jsonl")
        campaign = ShardedCampaign(_world(), _config(), workers=0)
        with pytest.raises(CampaignInterrupted):
            run_checkpointed(campaign, output, stop_after_shards=1)
        other_config = CampaignConfig(**{**SMOKE, "duration_days": 5.0})
        other = ShardedCampaign(_world(), other_config, workers=0)
        with pytest.raises(DatasetError, match="fingerprint"):
            run_checkpointed(other, output, resume=True)

    def test_serial_campaign_is_checkpointable(
        self, reference_hash, tmp_path
    ):
        # A plain Campaign checkpoints as one durable shard.
        output = str(tmp_path / "campaign.jsonl")
        campaign = Campaign(_world(), _config())
        result = run_checkpointed(campaign, output)
        assert result["total_shards"] == 1
        assert result["content_hash"] == reference_hash


# -- reconcile healing pass ---------------------------------------------------


class TestReconcile:
    def _checkpointed(self, tmp_path, backend="jsonl", shards=0):
        backend_obj = get_backend(backend)
        output = str(tmp_path / f"campaign{backend_obj.shard_extension}")
        campaign = ShardedCampaign(
            _world(), _config(), workers=0, shards=shards
        )
        run_checkpointed(campaign, output, backend=backend)
        return campaign, output

    def test_clean_checkpoints_reconcile_to_noop(
        self, reference_hash, tmp_path
    ):
        campaign, output = self._checkpointed(tmp_path)
        report = reconcile(campaign, output)
        assert not report.healed
        assert report.result["content_hash"] == reference_hash

    def test_truncated_and_missing_shards_are_healed(
        self, reference_hash, tmp_path
    ):
        campaign, output = self._checkpointed(tmp_path)
        store = CheckpointStore(
            default_checkpoint_dir(output), get_backend("jsonl")
        )
        # Truncate one committed shard mid-line and delete another.
        victim = store.shard_path(3)
        with open(victim, "rb") as handle:
            data = handle.read()
        with open(victim, "wb") as handle:
            handle.write(data[:-37])
        os.remove(store.shard_path(5))
        report = reconcile(campaign, output)
        statuses = {row.shard: row.status for row in report.rows}
        assert statuses[3] == "truncated"
        assert statuses[5] == "missing"
        assert len(report.healed) == 2
        assert report.result["content_hash"] == reference_hash
        assert load_dataset(output).content_hash() == reference_hash

    def test_quarantine_preserves_corrupt_evidence(
        self, reference_hash, tmp_path
    ):
        campaign, output = self._checkpointed(tmp_path)
        store = CheckpointStore(
            default_checkpoint_dir(output), get_backend("jsonl")
        )
        victim = store.shard_path(2)
        with open(victim, "rb") as handle:
            original = handle.read()
        # Corrupt a record in the middle: valid file shape, wrong bytes.
        with open(victim, "wb") as handle:
            handle.write(original.replace(b'"carrier"', b'"carrIer"', 1))
        report = reconcile(campaign, output)
        row = next(r for r in report.rows if r.shard == 2)
        assert row.status in ("corrupt", "mismatch")
        assert row.action == "quarantined+rerun"
        quarantined = [
            name
            for name in os.listdir(default_checkpoint_dir(output))
            if "quarantined" in name
        ]
        assert quarantined, "reconcile deleted the corrupt evidence"
        with open(
            os.path.join(default_checkpoint_dir(output), quarantined[0]), "rb"
        ) as handle:
            assert b'"carrIer"' in handle.read()
        assert report.result["content_hash"] == reference_hash

    def test_reconcile_without_manifest_refuses(self, tmp_path):
        campaign = ShardedCampaign(_world(), _config(), workers=0)
        with pytest.raises(DatasetError, match="nothing to reconcile"):
            reconcile(campaign, str(tmp_path / "never-ran.jsonl"))

    @pytest.mark.parametrize("name", ["sqlite", "columnar"])
    def test_reconcile_heals_alternate_backends(
        self, name, reference_hash, tmp_path
    ):
        campaign, output = self._checkpointed(tmp_path, backend=name)
        store = CheckpointStore(
            default_checkpoint_dir(output), get_backend(name)
        )
        victim = store.shard_path(1)
        with open(victim, "rb") as handle:
            data = handle.read()
        with open(victim, "wb") as handle:
            handle.write(data[: max(64, len(data) // 2)])
        report = reconcile(campaign, output, backend=name)
        assert len(report.healed) == 1
        assert report.result["content_hash"] == reference_hash


# -- validate learns manifests (satellite 2) ----------------------------------


class TestVerifyManifests:
    def test_clean_run_passes_every_row(self, tmp_path):
        output = str(tmp_path / "campaign.jsonl")
        campaign = ShardedCampaign(_world(), _config(), workers=0)
        run_checkpointed(campaign, output)
        verification = verify_manifests(output)
        assert verification.ok
        labels = [row.label for row in verification.rows]
        assert labels[-1] == "archive"
        assert len(labels) == campaign.shards + 1
        assert "PASS" in verification.table()

    def test_torn_shard_fails_its_row_only(self, tmp_path):
        output = str(tmp_path / "campaign.jsonl")
        campaign = ShardedCampaign(_world(), _config(), workers=0)
        run_checkpointed(campaign, output)
        store = CheckpointStore(
            default_checkpoint_dir(output), get_backend("jsonl")
        )
        with open(store.shard_path(0), "rb") as handle:
            data = handle.read()
        with open(store.shard_path(0), "wb") as handle:
            handle.write(data[:-19])
        verification = verify_manifests(output)
        assert not verification.ok
        by_label = {row.label: row for row in verification.rows}
        assert not by_label["shard-0000"].passed
        assert "truncated" in by_label["shard-0000"].detail
        assert by_label["shard-0001"].passed

    def test_archive_mismatch_fails_archive_row(self, tmp_path):
        output = str(tmp_path / "campaign.jsonl")
        campaign = ShardedCampaign(_world(), _config(), workers=0)
        run_checkpointed(campaign, output)
        # Rewrite the archive with one record dropped: shards all PASS,
        # the archive cross-check must FAIL.
        with open(output, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        record_indices = [
            i for i, line in enumerate(lines)
            if not line.startswith('{"_metadata"')
        ]
        del lines[record_indices[3]]
        with open(output, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        verification = verify_manifests(output)
        by_label = {row.label: row for row in verification.rows}
        assert not by_label["archive"].passed
        assert all(
            row.passed for row in verification.rows if row.label != "archive"
        )

    def test_missing_manifest_reports_cleanly(self, tmp_path):
        verification = verify_manifests(str(tmp_path / "no-such.jsonl"))
        assert not verification.ok
        assert "no campaign manifest" in verification.rows[0].detail


# -- result-cache equivalence across backends (satellite 6) -------------------


class TestCacheEquivalenceAcrossBackends:
    def test_jsonl_and_sqlite_share_one_cache_entry(
        self, serial_dataset, tmp_path
    ):
        jsonl_path = str(tmp_path / "campaign.jsonl")
        sqlite_path = str(tmp_path / "campaign.sqlite")
        serial_dataset.save(jsonl_path, backend="jsonl")
        serial_dataset.save(sqlite_path, backend="sqlite")

        cache = AnalysisResultCache()
        calls = []

        def render(dataset):
            calls.append(1)
            return f"report for {len(dataset)} records"

        via_jsonl = Dataset.load(jsonl_path)
        via_sqlite = Dataset.load(sqlite_path)
        assert via_jsonl.content_hash() == via_sqlite.content_hash()
        first = cache.get_or_render(
            via_jsonl.content_hash(), "report", lambda: render(via_jsonl)
        )
        second = cache.get_or_render(
            via_sqlite.content_hash(), "report", lambda: render(via_sqlite)
        )
        # One miss (rendered from the JSONL load), then the SQLite load
        # lands on the same entry: the cache key is the content hash,
        # which the storage layer never perturbs.
        assert (cache.misses, cache.hits) == (1, 1)
        assert first == second
        assert len(calls) == 1

    def test_checkpointed_runs_share_cache_across_backends(self, tmp_path):
        hashes = {}
        for name in ("jsonl", "sqlite"):
            backend = get_backend(name)
            output = str(tmp_path / f"campaign{backend.shard_extension}")
            campaign = ShardedCampaign(_world(), _config(), workers=0)
            result = run_checkpointed(campaign, output, backend=name)
            hashes[name] = result["content_hash"]
        assert hashes["jsonl"] == hashes["sqlite"]


# -- manifest durability details ----------------------------------------------


class TestManifestFormat:
    def test_shard_manifest_records_range_count_and_hash(self, tmp_path):
        output = str(tmp_path / "campaign.jsonl")
        campaign = ShardedCampaign(_world(), _config(), workers=0, shards=3)
        run_checkpointed(campaign, output)
        store = CheckpointStore(
            default_checkpoint_dir(output), get_backend("jsonl")
        )
        manifest = store.read_manifest()
        assert manifest["shards"] == 3
        assert manifest["backend"] == "jsonl"
        assert len(manifest["tasks"]) == 3
        total = 0
        for shard in range(3):
            sidecar = store.read_shard_manifest(shard)
            scan = store.backend.scan(store.shard_path(shard))
            assert sidecar["records"] == scan.records
            assert sidecar["sha256"] == scan.sha256
            assert sidecar["ranges"] == manifest["tasks"][shard]
            total += sidecar["records"]
        assert total == len(Dataset.load(output))

    def test_no_stray_tmp_files_after_clean_run(self, tmp_path):
        output = str(tmp_path / "campaign.jsonl")
        campaign = ShardedCampaign(_world(), _config(), workers=0)
        run_checkpointed(campaign, output)
        stray = [
            name
            for name in os.listdir(default_checkpoint_dir(output))
            if name.endswith(".tmp")
        ]
        assert stray == []
