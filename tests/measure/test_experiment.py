"""The full experiment script."""

import pytest

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.measure.experiment import ExperimentOptions, ExperimentRunner
from repro.geo.regions import US_CITIES, city_named


@pytest.fixture()
def device(world):
    mobility = MobilityModel(
        home_city=city_named("Dallas"),
        candidate_cities=US_CITIES,
        seed=31,
        device_key="exp-dev",
        travel_probability=0.0,
    )
    return MobileDevice(device_id="exp-dev", carrier_key="verizon", mobility=mobility)


@pytest.fixture()
def record(world, device):
    runner = ExperimentRunner(world)
    return runner.run(device, started_at=0.0, sequence=0)


class TestExperimentStructure:
    def test_metadata(self, record):
        assert record.carrier == "verizon"
        assert record.country == "US"
        assert record.technology
        assert record.client_ip

    def test_bootstrap_ping_first(self, record):
        assert record.pings[0].target_kind == "bootstrap"

    def test_nine_domains_three_resolvers(self, record):
        domains = {r.domain for r in record.resolutions}
        assert len(domains) == 9
        kinds = {r.resolver_kind for r in record.resolutions}
        assert kinds == {"local", "google", "opendns"}

    def test_double_local_queries(self, record):
        for domain in {r.domain for r in record.resolutions}:
            attempts = [
                r.attempt
                for r in record.resolutions
                if r.domain == domain and r.resolver_kind == "local"
            ]
            assert sorted(attempts) == [1, 2]

    def test_replicas_probed(self, record):
        replica_pings = [p for p in record.pings if p.target_kind == "replica"]
        assert replica_pings
        assert record.http_gets
        probed = {p.target_ip for p in replica_pings}
        fetched = {h.replica_ip for h in record.http_gets}
        assert probed == fetched

    def test_resolver_ids_for_all_kinds(self, record):
        kinds = {r.resolver_kind for r in record.resolver_ids}
        assert kinds == {"local", "google", "opendns"}

    def test_egress_traceroute_present(self, record):
        kinds = [t.target_kind for t in record.traceroutes]
        assert "egress-discovery" in kinds

    def test_verizon_external_resolver_silent_to_clients(self, record):
        # Fig 4: Verizon's external tier never answers client pings.
        external_pings = [
            p for p in record.pings
            if p.target_kind == "resolver-external-facing"
        ]
        assert external_pings
        assert all(p.rtt_ms is None for p in external_pings)


class TestExperimentOptions:
    def test_disable_double_query(self, world, device):
        runner = ExperimentRunner(world, ExperimentOptions(double_query=False))
        record = runner.run(device, started_at=0.0, sequence=1)
        assert all(r.attempt == 1 for r in record.resolutions)

    def test_domain_subset(self, world, device):
        runner = ExperimentRunner(
            world, ExperimentOptions(domains=["m.yelp.com"])
        )
        record = runner.run(device, started_at=0.0, sequence=2)
        assert {r.domain for r in record.resolutions} == {"m.yelp.com"}

    def test_disable_replica_probes(self, world, device):
        runner = ExperimentRunner(
            world, ExperimentOptions(probe_replicas=False)
        )
        record = runner.run(device, started_at=0.0, sequence=3)
        assert record.http_gets == []

    def test_cap_replica_probes(self, world, device):
        runner = ExperimentRunner(
            world, ExperimentOptions(max_replica_probes=2)
        )
        record = runner.run(device, started_at=0.0, sequence=4)
        assert len(record.http_gets) <= 2

    def test_reproducible_across_fresh_worlds(self):
        # Replaying in one world differs (caches and RNG streams advance);
        # determinism is defined over fresh worlds with the same seed.
        from repro.core.world import build_world

        def run_once():
            world = build_world()
            mobility = MobilityModel(
                home_city=city_named("Dallas"),
                candidate_cities=US_CITIES,
                seed=31,
                device_key="exp-dev",
                travel_probability=0.0,
            )
            fresh = MobileDevice(
                device_id="exp-dev", carrier_key="verizon", mobility=mobility
            )
            return ExperimentRunner(world).run(fresh, started_at=7200.0, sequence=9)

        assert run_once() == run_once()
