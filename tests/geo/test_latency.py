"""WAN latency model."""

import pytest

from repro.core.rng import RandomStream
from repro.geo.coordinates import GeoPoint
from repro.geo.latency import WanLatencyModel

NYC = GeoPoint(40.7128, -74.0060)
LA = GeoPoint(34.0522, -118.2437)
SEOUL = GeoPoint(37.5665, 126.9780)


class TestBaseRtt:
    def test_floor_for_colocated(self):
        model = WanLatencyModel()
        assert model.base_rtt_ms(NYC, NYC) >= model.min_rtt_ms

    def test_cross_country_plausible(self):
        model = WanLatencyModel()
        rtt = model.base_rtt_ms(NYC, LA)
        assert 35.0 < rtt < 80.0

    def test_transpacific_plausible(self):
        model = WanLatencyModel()
        rtt = model.base_rtt_ms(LA, SEOUL)
        assert 120.0 < rtt < 220.0

    def test_monotone_in_distance(self):
        model = WanLatencyModel()
        assert model.base_rtt_ms(NYC, SEOUL) > model.base_rtt_ms(NYC, LA)

    def test_memo_consistency(self):
        model = WanLatencyModel()
        assert model.base_rtt_ms(NYC, LA) == model.base_rtt_ms(NYC, LA)


class TestJitter:
    def test_zero_sigma_is_deterministic(self):
        model = WanLatencyModel(jitter_sigma=0.0)
        stream = RandomStream(1, "jitter")
        assert model.rtt_ms(NYC, LA, stream) == model.base_rtt_ms(NYC, LA)

    def test_jitter_centres_on_base(self):
        model = WanLatencyModel()
        stream = RandomStream(1, "jitter2")
        base = model.base_rtt_ms(NYC, LA)
        samples = sorted(model.rtt_ms(NYC, LA, stream) for _ in range(1001))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(base, rel=0.05)


class TestHopCount:
    def test_monotone_buckets(self):
        model = WanLatencyModel()
        distances = [1.0, 50.0, 300.0, 1000.0, 3000.0, 9000.0]
        hops = [model.hop_count(d) for d in distances]
        assert hops == sorted(hops)
        assert hops[0] >= 1
