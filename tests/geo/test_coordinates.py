"""Coordinates and great-circle distance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.coordinates import EARTH_RADIUS_KM, GeoPoint, haversine_km

latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
points = st.builds(GeoPoint, latitudes, longitudes)


class TestGeoPoint:
    def test_validates_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)

    def test_validates_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_known_distance_nyc_la(self):
        nyc = GeoPoint(40.7128, -74.0060)
        la = GeoPoint(34.0522, -118.2437)
        assert 3900.0 < nyc.distance_km(la) < 4000.0

    def test_known_distance_seoul_tokyo(self):
        seoul = GeoPoint(37.5665, 126.9780)
        tokyo = GeoPoint(35.6762, 139.6503)
        assert 1100.0 < seoul.distance_km(tokyo) < 1250.0

    def test_offset_km_moves_roughly_right_amount(self):
        chicago = GeoPoint(41.8781, -87.6298)
        moved = chicago.offset_km(10.0, 0.0)
        assert chicago.distance_km(moved) == pytest.approx(10.0, rel=0.02)

    def test_offset_wraps_longitude(self):
        edge = GeoPoint(0.0, 179.99)
        wrapped = edge.offset_km(0.0, 300.0)
        assert -180.0 <= wrapped.longitude <= 180.0


class TestHaversineProperties:
    @given(points)
    def test_self_distance_zero(self, point):
        assert haversine_km(point, point) == pytest.approx(0.0, abs=1e-6)

    @given(points, points)
    def test_symmetry(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a), rel=1e-9)

    @given(points, points)
    def test_bounded_by_half_circumference(self, a, b):
        import math

        assert haversine_km(a, b) <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(points, points)
    def test_non_negative(self, a, b):
        assert haversine_km(a, b) >= 0.0
