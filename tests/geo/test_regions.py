"""Region/city data."""

import pytest

from repro.geo.regions import (
    ASIA_PACIFIC_CITIES,
    Country,
    SOUTH_KOREA_CITIES,
    US_CITIES,
    cities_for,
    city_named,
    city_weights,
)


class TestCityData:
    def test_thirty_us_cities(self):
        assert len(US_CITIES) == 30

    def test_ten_sk_cities(self):
        assert len(SOUTH_KOREA_CITIES) == 10

    def test_unique_names(self):
        names = [c.name for c in US_CITIES + SOUTH_KOREA_CITIES + ASIA_PACIFIC_CITIES]
        assert len(set(names)) == len(names)

    def test_countries_assigned(self):
        assert all(c.country is Country.US for c in US_CITIES)
        assert all(c.country is Country.SOUTH_KOREA for c in SOUTH_KOREA_CITIES)

    def test_cities_for(self):
        assert cities_for(Country.US) == US_CITIES
        assert cities_for(Country.SOUTH_KOREA) == SOUTH_KOREA_CITIES

    def test_city_named(self):
        assert city_named("Seoul").country is Country.SOUTH_KOREA
        with pytest.raises(KeyError):
            city_named("Atlantis")

    def test_weights_positive(self):
        assert all(w > 0 for w in city_weights(US_CITIES))

    def test_asia_pacific_infrastructure_only(self):
        assert all(c.country is Country.ASIA_PACIFIC for c in ASIA_PACIFIC_CITIES)
        assert "Tokyo" in {c.name for c in ASIA_PACIFIC_CITIES}
