"""Mobile devices."""

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.geo.regions import US_CITIES, city_named


def _device(key="dev-d-1"):
    mobility = MobilityModel(
        home_city=city_named("Boston"),
        candidate_cities=US_CITIES,
        seed=7,
        device_key=key,
        travel_probability=0.0,
    )
    return MobileDevice(device_id=key, carrier_key="att", mobility=mobility)


class TestDevice:
    def test_location_follows_mobility(self):
        device = _device()
        home = city_named("Boston").location
        assert device.location(0.0).distance_km(home) < 20.0

    def test_coarse_location_snaps_to_grid(self):
        device = _device()
        coarse = device.coarse_location(0.0, grid_km=0.1)
        step = 0.1 / 111.32
        assert abs(coarse.latitude / step - round(coarse.latitude / step)) < 1e-6

    def test_coarse_location_close_to_exact(self):
        device = _device()
        exact = device.location(0.0)
        coarse = device.coarse_location(0.0, grid_km=0.1)
        assert exact.distance_km(coarse) < 0.2

    def test_home_city_name(self):
        assert _device().home_city_name == "Boston"

    def test_str(self):
        text = str(_device())
        assert "dev-d-1" in text and "att" in text
