"""Cellular operator behaviour: attachment, origins, local DNS."""

import pytest

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.addressing import prefix24
from repro.dns.message import RRType
from repro.geo.regions import US_CITIES, SOUTH_KOREA_CITIES, city_named


def _device(world, carrier="att", home="Chicago", key="dev-op-1", travel=0.0):
    operator = world.operators[carrier]
    cities = US_CITIES if operator.country.value == "US" else SOUTH_KOREA_CITIES
    mobility = MobilityModel(
        home_city=city_named(home),
        candidate_cities=cities,
        seed=1234,
        device_key=key,
        travel_probability=travel,
    )
    return MobileDevice(device_id=key, carrier_key=carrier, mobility=mobility)


class TestAttachment:
    def test_client_ip_in_nat_pool(self, world):
        operator = world.operators["att"]
        device = _device(world)
        attachment = operator.attachment(device, now=0.0)
        assert operator.client_pool_prefix.contains(attachment.client_ip)

    def test_client_ip_churns_across_epochs(self, world):
        operator = world.operators["att"]
        device = _device(world)
        ips = {
            operator.attachment(device, now=day * 86400.0).client_ip
            for day in range(20)
        }
        assert len(ips) > 5

    def test_attachment_pure_in_time(self, world):
        operator = world.operators["att"]
        device = _device(world)
        first = operator.attachment(device, now=1000.0)
        second = operator.attachment(device, now=1000.0)
        assert first.client_ip == second.client_ip
        assert first.egress.ip == second.egress.ip

    def test_egress_is_near_device(self, world):
        operator = world.operators["verizon"]
        device = _device(world, carrier="verizon", home="Seattle")
        attachment = operator.attachment(device, now=0.0)
        distance = attachment.egress.location.distance_km(device.location(0.0))
        assert distance < 2500.0

    def test_configured_dns_is_deployment_address(self, world):
        operator = world.operators["verizon"]
        device = _device(world, carrier="verizon")
        attachment = operator.attachment(device, now=0.0)
        assert attachment.client_dns_ip in operator.deployment.client_ips()


class TestProbeOrigins:
    def test_origin_carries_radio_latency(self, world, stream):
        operator = world.operators["att"]
        device = _device(world, key="dev-op-2")
        from repro.cellnet.radio import RadioTechnology

        origin = operator.probe_origin(
            device, 0.0, stream, technology=RadioTechnology.LTE
        )
        assert 15.0 < origin.access_rtt_ms < 150.0
        assert origin.egress is not None
        assert origin.interior_hops  # tunnelled core hops

    def test_promotion_paid_once(self, world, stream):
        operator = world.operators["att"]
        device = _device(world, key="dev-op-3")
        from repro.cellnet.radio import RadioTechnology

        cold = operator.probe_origin(
            device, 0.0, stream, technology=RadioTechnology.LTE, pay_promotion=True
        )
        warm = operator.probe_origin(
            device, 1.0, stream, technology=RadioTechnology.LTE, pay_promotion=True
        )
        assert cold.access_rtt_ms > warm.access_rtt_ms + 150.0


class TestLocalResolution:
    def _resolve(self, world, stream, carrier="att", qname="www.google.com"):
        operator = world.operators[carrier]
        device = _device(world, carrier=carrier, key=f"dev-res-{carrier}")
        attachment = operator.attachment(device, now=0.0)
        from repro.cellnet.radio import RadioTechnology

        origin = operator.probe_origin(
            device, 0.0, stream, technology=RadioTechnology.LTE
        )
        return operator.resolve_local(
            device, origin, attachment, qname, RRType.A, 0.0, stream
        )

    def test_returns_replica_addresses(self, world, stream):
        result = self._resolve(world, stream)
        assert result.addresses
        assert result.total_ms > 0

    def test_external_ip_belongs_to_deployment(self, world, stream):
        result = self._resolve(world, stream)
        assert result.external_ip in world.operators["att"].deployment.external_ips()

    def test_client_facing_differs_from_external(self, world, stream):
        result = self._resolve(world, stream, carrier="verizon")
        assert result.client_facing_ip != result.external_ip
        # Verizon's tiers live in different ASes (Sec 4.1).
        client_asn = world.internet.asn_of(result.client_facing_ip)
        external_asn = world.internet.asn_of(result.external_ip)
        assert client_asn == 6167
        assert external_asn == 22394

    def test_sk_pairs_share_prefix(self, world, stream):
        result = self._resolve(world, stream, carrier="skt")
        assert prefix24(result.client_facing_ip) in {
            prefix24(ip) for ip in world.operators["skt"].deployment.external_ips()
        }


class TestResolverPing:
    def test_client_resolver_ping_answered_everywhere(self, world, stream):
        for carrier in world.operators:
            operator = world.operators[carrier]
            device = _device(world, carrier=carrier, key=f"dev-ping-{carrier}")
            attachment = operator.attachment(device, now=0.0)
            from repro.cellnet.radio import RadioTechnology

            origin = operator.probe_origin(
                device, 0.0, stream, technology=RadioTechnology.LTE
            )
            rtt = operator.ping_client_resolver(origin, attachment, stream)
            assert rtt is not None and rtt > 0


class TestOwnership:
    def test_owns_client_pool_and_egress(self, world):
        operator = world.operators["att"]
        assert operator.owns_ip(operator.egress_points[0].ip)

    def test_owns_sibling_as_resolvers(self, world):
        verizon = world.operators["verizon"]
        external_ip = verizon.deployment.external_ips()[0]
        assert verizon.owns_ip(external_ip)

    def test_does_not_own_foreign_space(self, world):
        operator = world.operators["att"]
        google_ip = world.google_dns.clusters[0].hosts[0].ip
        assert not operator.owns_ip(google_ip)
