"""Radio technologies, latency bands and the RRC state machine."""

import pytest

from repro.cellnet.radio import (
    Generation,
    RadioProfile,
    RadioState,
    RadioTechnology,
    RrcStateMachine,
    band_medians,
    promotion_cost_ms,
    technologies_of,
)
from repro.core.errors import ConfigError
from repro.core.rng import RandomStream


class TestTechnologyTable:
    def test_generations(self):
        assert RadioTechnology.LTE.generation is Generation.G4
        assert RadioTechnology.HSPA.generation is Generation.G3
        assert RadioTechnology.ONE_X_RTT.generation is Generation.G2
        assert RadioTechnology.GPRS.generation is Generation.G2

    def test_paper_spelling_preserved(self):
        # The paper writes "UTMS" throughout; labels must match its figures.
        assert RadioTechnology.UMTS.value == "UTMS"

    def test_lte_is_fastest_band(self):
        medians = band_medians()
        assert medians[0][0] == "LTE"

    def test_2g_is_slowest(self):
        by_label = dict(band_medians())
        assert by_label["1xRTT"] > 500.0
        assert by_label["GPRS"] > 500.0

    def test_3g_band_sits_between(self):
        by_label = dict(band_medians())
        lte = by_label["LTE"]
        for label in ("EHRPD", "EVDO_A", "HSPA", "HSDPA"):
            assert lte < by_label[label] < 500.0

    def test_fig3_band_gap_lte_vs_3g(self):
        # ~50 ms separation between LTE and CDMA-3G at the median (Sec 3.3).
        gap = (
            RadioTechnology.EHRPD.latency.median_rtt_ms
            - RadioTechnology.LTE.latency.median_rtt_ms
        )
        assert 30.0 < gap < 90.0

    def test_technologies_of_parses_figure_labels(self):
        parsed = technologies_of(["LTE", "UTMS", "1xRTT"])
        assert parsed == [
            RadioTechnology.LTE,
            RadioTechnology.UMTS,
            RadioTechnology.ONE_X_RTT,
        ]
        with pytest.raises(ConfigError):
            technologies_of(["WIMAX"])


class TestRrcStateMachine:
    def test_cold_start_pays_promotion(self):
        machine = RrcStateMachine()
        cost = promotion_cost_ms(RadioTechnology.LTE, machine, now=0.0)
        assert cost == RadioTechnology.LTE.latency.promotion_ms

    def test_warm_radio_is_free(self):
        machine = RrcStateMachine()
        promotion_cost_ms(RadioTechnology.LTE, machine, now=0.0)
        assert promotion_cost_ms(RadioTechnology.LTE, machine, now=1.0) == 0.0

    def test_demotion_after_timeout(self):
        machine = RrcStateMachine(demotion_timeout_s=11.0)
        promotion_cost_ms(RadioTechnology.LTE, machine, now=0.0)
        assert promotion_cost_ms(RadioTechnology.LTE, machine, now=30.0) > 0.0

    def test_is_connected(self):
        machine = RrcStateMachine(demotion_timeout_s=11.0)
        assert not machine.is_connected(0.0)
        machine.touch(0.0)
        assert machine.is_connected(5.0)
        assert not machine.is_connected(20.0)

    def test_state_transitions(self):
        machine = RrcStateMachine()
        assert machine.state is RadioState.IDLE
        machine.touch(0.0)
        assert machine.state is RadioState.CONNECTED


class TestRadioProfile:
    def test_draw_respects_weights(self):
        profile = RadioProfile(
            [RadioTechnology.LTE, RadioTechnology.GPRS], [0.9, 0.1]
        )
        stream = RandomStream(1, "radio")
        draws = [profile.draw(stream) for _ in range(500)]
        assert draws.count(RadioTechnology.LTE) > 380

    def test_access_rtt_in_band(self):
        profile = RadioProfile([RadioTechnology.LTE])
        stream = RandomStream(2, "radio")
        samples = sorted(
            profile.access_rtt_ms(RadioTechnology.LTE, stream) for _ in range(1001)
        )
        median = samples[len(samples) // 2]
        assert 22.0 < median < 36.0

    def test_default_weights(self):
        profile = RadioProfile([RadioTechnology.LTE, RadioTechnology.HSPA])
        assert profile.weights == [1.0, 1.0]

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ConfigError):
            RadioProfile([RadioTechnology.LTE], [0.5, 0.5])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            RadioProfile([])

    def test_lte_share(self):
        profile = RadioProfile(
            [RadioTechnology.LTE, RadioTechnology.HSPA], [3.0, 1.0]
        )
        assert profile.lte_share() == pytest.approx(0.75)
