"""Mobility model: anchored wander plus occasional trips."""

from repro.cellnet.mobility import MobilityModel
from repro.core.clock import SECONDS_PER_DAY
from repro.geo.regions import US_CITIES, city_named


def _model(travel_probability=0.08, device_key="dev-1"):
    return MobilityModel(
        home_city=city_named("Chicago"),
        candidate_cities=US_CITIES,
        seed=99,
        device_key=device_key,
        travel_probability=travel_probability,
    )


class TestAnchoring:
    def test_mostly_home(self):
        model = _model()
        epochs = [t * model.travel_epoch_s for t in range(100)]
        home = sum(1 for t in epochs if model.anchor_city(t).name == "Chicago")
        assert home > 80

    def test_never_travels_with_zero_probability(self):
        model = _model(travel_probability=0.0)
        for t in range(50):
            assert model.anchor_city(t * model.travel_epoch_s).name == "Chicago"

    def test_always_travels_with_probability_one(self):
        model = _model(travel_probability=1.0)
        assert model.is_travelling(0.0)
        assert model.anchor_city(0.0).name != "Chicago"

    def test_deterministic(self):
        a = _model().anchor_city(5 * 4 * SECONDS_PER_DAY)
        b = _model().anchor_city(5 * 4 * SECONDS_PER_DAY)
        assert a is b

    def test_devices_differ(self):
        a = _model(travel_probability=1.0, device_key="dev-a")
        b = _model(travel_probability=1.0, device_key="dev-b")
        trips_a = [a.anchor_city(t * a.travel_epoch_s).name for t in range(10)]
        trips_b = [b.anchor_city(t * b.travel_epoch_s).name for t in range(10)]
        assert trips_a != trips_b


class TestWander:
    def test_stays_within_wander_radius(self):
        model = _model(travel_probability=0.0)
        home = city_named("Chicago").location
        for hour in range(100):
            position = model.location(hour * 3600.0)
            # Corner of the wander box is sqrt(2) * wander_km away at most.
            assert home.distance_km(position) < model.wander_km * 1.5

    def test_wander_changes_hourly_not_within_hour(self):
        model = _model(travel_probability=0.0)
        assert model.location(100.0) == model.location(200.0)
        assert model.location(100.0) != model.location(3700.0)


class TestStationaryWindows:
    def test_all_home_when_never_travelling(self):
        model = _model(travel_probability=0.0)
        times = model.stationary_windows(0.0, 10 * 3600.0)
        assert len(times) == 10

    def test_empty_when_always_travelling(self):
        model = _model(travel_probability=1.0)
        assert model.stationary_windows(0.0, 10 * 3600.0) == []
