"""Carrier presets encode the paper's per-carrier structure."""

import pytest

from repro.cellnet.presets import (
    CarrierConfig,
    att_config,
    default_carrier_configs,
    lg_uplus_config,
    sk_telecom_config,
    sprint_config,
    tmobile_config,
    verizon_config,
)
from repro.core.node import PingPolicy
from repro.dns.indirect import DeploymentKind


class TestConfigTable:
    def test_six_carriers_us_first(self):
        keys = [config.key for config in default_carrier_configs()]
        assert keys == ["att", "sprint", "tmobile", "verizon", "skt", "lgu"]

    def test_table1_client_counts(self):
        counts = {c.key: c.client_count for c in default_carrier_configs()}
        assert counts == {
            "att": 33, "sprint": 9, "tmobile": 31,
            "verizon": 64, "skt": 17, "lgu": 4,
        }
        assert sum(counts.values()) == 158

    def test_sec52_egress_counts(self):
        counts = {c.key: c.egress_count for c in default_carrier_configs()}
        assert counts["att"] == 11
        assert counts["sprint"] == 45
        assert counts["tmobile"] == 49
        assert counts["verizon"] == 62

    def test_weights_sum_to_one(self):
        for config in default_carrier_configs():
            assert sum(config.technology_weights) == pytest.approx(1.0, abs=0.01)

    def test_fig3_technology_panels(self):
        # Fig 3 lists the exact technology sets seen per carrier.
        assert set(sprint_config().technologies) == {
            "1xRTT", "EHRPD", "EVDO_A", "LTE",
        }
        assert set(verizon_config().technologies) == {
            "1xRTT", "EHRPD", "EVDO_A", "LTE",
        }
        assert set(lg_uplus_config().technologies) == {"EHRPD", "LTE"}
        assert len(att_config().technologies) == 7
        assert len(tmobile_config().technologies) == 7
        assert "HSUPA" in sk_telecom_config().technologies


class TestDeploymentShapes:
    def test_att_anycast(self):
        config = att_config()
        assert config.deployment_kind is DeploymentKind.ANYCAST
        assert config.n_sites * config.externals_per_site == 40

    def test_verizon_tiered_split_as(self):
        config = verizon_config()
        assert config.deployment_kind is DeploymentKind.TIERED
        assert config.asn == 6167
        assert config.external_asn == 22394
        assert config.external_ping_policy is PingPolicy.EXTERNAL_ONLY

    def test_sprint_pool(self):
        config = sprint_config()
        assert config.deployment_kind is DeploymentKind.POOL
        assert 0.0 < config.externally_open_fraction < 0.3

    def test_sk_carriers_shared_prefixes(self):
        assert sk_telecom_config().shared_external_prefixes == 2
        assert lg_uplus_config().shared_external_prefixes == 2
        assert sk_telecom_config().clients_share_external_prefix
        assert lg_uplus_config().clients_share_external_prefix

    def test_lgu_dense_and_silent(self):
        config = lg_uplus_config()
        assert config.n_sites * config.externals_per_site == 90
        assert config.external_ping_policy is PingPolicy.SILENT

    def test_table4_reachability_policies(self):
        assert att_config().externally_open_fraction >= 0.5
        assert verizon_config().externally_open_fraction >= 0.5
        assert tmobile_config().externally_open_fraction == 0.0
        assert sk_telecom_config().externally_open_fraction == 0.0


class TestBuiltDeployments:
    def test_att_external_count(self, world):
        assert len(world.operators["att"].deployment.externals) == 40

    def test_tmobile_prefix_diversity(self, world):
        from repro.core.addressing import prefix24

        deployment = world.operators["tmobile"].deployment
        prefixes = {prefix24(ip) for ip in deployment.external_ips()}
        # Two machines per /24 across 48 machines -> 24 prefixes.
        assert len(prefixes) == 24

    def test_verizon_pairs_one_to_one(self, world):
        deployment = world.operators["verizon"].deployment
        assert len(deployment.client_addresses) == len(deployment.externals)

    def test_sprint_pools_are_regional(self, world):
        deployment = world.operators["sprint"].deployment
        pairing = deployment.pairing
        for address in deployment.client_addresses:
            members = pairing.pools[address.ip]
            assert members, "every front needs a pool"
            front_location = address.host.location
            mean_km = sum(
                member.site.location.distance_km(front_location)
                for member in members
            ) / len(members)
            assert mean_km < 2500.0
