"""3G vs LTE core architecture models."""

from repro.cellnet.architecture import (
    CoreArchitecture,
    core_model,
    core_rtt_ms,
    interior_hops_for,
)
from repro.cellnet.radio import RadioTechnology
from repro.core.rng import RandomStream


class TestArchitectureSelection:
    def test_lte_uses_epc(self):
        assert (
            CoreArchitecture.for_technology(RadioTechnology.LTE)
            is CoreArchitecture.LTE_EPC
        )

    def test_3g_and_2g_use_legacy_core(self):
        for technology in (
            RadioTechnology.HSPA,
            RadioTechnology.EVDO_A,
            RadioTechnology.GPRS,
        ):
            assert (
                CoreArchitecture.for_technology(technology)
                is CoreArchitecture.UMTS_3G
            )


class TestCoreModels:
    def test_epc_is_flatter(self):
        legacy = core_model(CoreArchitecture.UMTS_3G)
        epc = core_model(CoreArchitecture.LTE_EPC)
        assert len(epc.elements) < len(legacy.elements)
        assert epc.median_core_rtt_ms < legacy.median_core_rtt_ms

    def test_fig1_elements(self):
        assert core_model(CoreArchitecture.UMTS_3G).elements == [
            "nodeb", "rnc", "sgsn", "ggsn",
        ]
        assert core_model(CoreArchitecture.LTE_EPC).elements == [
            "enodeb", "sgw", "pgw",
        ]

    def test_core_rtt_positive(self):
        stream = RandomStream(3, "core")
        for architecture in CoreArchitecture:
            assert core_rtt_ms(architecture, stream) > 0.0


class TestInteriorHops:
    def test_hops_are_tunnelled(self):
        for architecture in CoreArchitecture:
            hops = interior_hops_for(architecture)
            assert hops
            assert all(not hop.responds for hop in hops)
            assert all(hop.ip is None for hop in hops)

    def test_hop_count_matches_elements(self):
        for architecture in CoreArchitecture:
            assert len(interior_hops_for(architecture)) == len(
                core_model(architecture).elements
            )
