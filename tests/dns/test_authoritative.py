"""Authoritative servers, including the resolver-echo authority."""

import pytest

from repro.core.addressing import Prefix
from repro.core.asn import ASKind, AutonomousSystem
from repro.core.node import Host
from repro.dns.authoritative import ResolverEchoAuthority, StaticAuthority
from repro.dns.message import RCode, RRType, make_query
from repro.dns.zone import Zone
from repro.geo.coordinates import GeoPoint


@pytest.fixture()
def host():
    system = AutonomousSystem(64501, "dns", ASKind.CONTENT)
    system.add_prefix(Prefix.parse("198.18.0.0/24"))
    return Host(
        ip="198.18.0.53",
        name="ns1",
        asys=system,
        location=GeoPoint(41.8781, -87.6298),
    )


class TestStaticAuthority:
    def _authority(self, host):
        zone = Zone("example.com")
        zone.add_cname("www.example.com", "edge.cdn-sim.net", ttl=3600)
        return StaticAuthority(host=host, zone_apex="example.com", zone=zone)

    def test_answers_in_zone(self, host):
        authority = self._authority(host)
        response = authority.answer(make_query("www.example.com"), "10.0.0.1", 0.0)
        assert response.rcode is RCode.NOERROR
        assert response.authoritative
        assert response.cname_chain() == ["edge.cdn-sim.net"]

    def test_refuses_out_of_zone(self, host):
        authority = self._authority(host)
        response = authority.answer(make_query("www.other.org"), "10.0.0.1", 0.0)
        assert response.rcode is RCode.REFUSED

    def test_nxdomain(self, host):
        authority = self._authority(host)
        response = authority.answer(make_query("nope.example.com"), "10.0.0.1", 0.0)
        assert response.rcode is RCode.NXDOMAIN

    def test_default_zone_created(self, host):
        authority = StaticAuthority(host=host, zone_apex="fresh.net")
        assert authority.zone.apex == "fresh.net"

    def test_serves(self, host):
        authority = self._authority(host)
        assert authority.serves("deep.sub.example.com")
        assert not authority.serves("example.org")


class TestResolverEchoAuthority:
    def test_echoes_querying_resolver(self, host):
        authority = ResolverEchoAuthority(host=host, zone_apex="whoami.probe.net")
        response = authority.answer(
            make_query("e1.local.whoami.probe.net"), "203.0.113.9", now=5.0
        )
        records = response.a_records()
        assert len(records) == 1
        assert records[0].data == "203.0.113.9"

    def test_zero_ttl_prevents_caching(self, host):
        authority = ResolverEchoAuthority(host=host, zone_apex="whoami.probe.net")
        response = authority.answer(
            make_query("x.whoami.probe.net"), "203.0.113.9", now=0.0
        )
        assert response.a_records()[0].ttl == 0

    def test_logs_observations(self, host):
        authority = ResolverEchoAuthority(host=host, zone_apex="whoami.probe.net")
        authority.answer(make_query("a.google.whoami.probe.net"), "1.2.3.4", 1.0)
        authority.answer(make_query("b.local.whoami.probe.net"), "5.6.7.8", 2.0)
        all_entries = authority.observations_for("whoami.probe.net")
        assert len(all_entries) == 2
        local_only = authority.observations_for("local.whoami.probe.net")
        assert len(local_only) == 1
        assert local_only[0].resolver_ip == "5.6.7.8"

    def test_refuses_out_of_zone(self, host):
        authority = ResolverEchoAuthority(host=host, zone_apex="whoami.probe.net")
        response = authority.answer(make_query("other.net"), "1.2.3.4", 0.0)
        assert response.rcode is RCode.REFUSED
        assert authority.log == []
