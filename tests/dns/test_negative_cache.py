"""Negative caching (RFC 2308 behaviour)."""

import pytest

from repro.core.rng import RandomStream
from repro.dns.cache import DnsCache
from repro.dns.message import RCode, RRType


class TestCacheLayer:
    def test_put_and_get_negative(self):
        cache = DnsCache()
        cache.put_negative("gone.example", RRType.A, ttl=60, now=0.0)
        entry = cache.get_entry_kind("gone.example", RRType.A, now=30.0)
        assert entry is not None
        records, negative = entry
        assert negative and records == []

    def test_negative_expires(self):
        cache = DnsCache()
        cache.put_negative("gone.example", RRType.A, ttl=60, now=0.0)
        assert cache.get_entry_kind("gone.example", RRType.A, now=61.0) is None

    def test_zero_ttl_not_stored(self):
        cache = DnsCache()
        cache.put_negative("gone.example", RRType.A, ttl=0, now=0.0)
        assert cache.get_entry_kind("gone.example", RRType.A, now=0.0) is None

    def test_entry_kind_distinguishes_positive(self):
        from repro.dns.message import ResourceRecord

        cache = DnsCache()
        cache.put_answer(
            "live.example", RRType.A,
            [ResourceRecord("live.example", RRType.A, 60, "10.0.0.1")],
            now=0.0,
        )
        records, negative = cache.get_entry_kind("live.example", RRType.A, 1.0)
        assert not negative and records


class TestEngineNegativeCaching:
    def _engine(self, world):
        return world.operators["att"].deployment.externals[0].engine

    def test_nxdomain_cached(self, world):
        engine = self._engine(world)
        stream = RandomStream(314, "neg")
        first = engine.resolve("ghost.buzzfeed.com", RRType.A, 0.0, stream)
        second = engine.resolve("ghost.buzzfeed.com", RRType.A, 5.0, stream)
        assert first.rcode is RCode.NXDOMAIN
        assert not first.cache_hit
        assert second.rcode is RCode.NXDOMAIN
        assert second.cache_hit
        assert second.upstream_ms == 0.0

    def test_negative_entry_expires(self, world):
        engine = self._engine(world)
        stream = RandomStream(315, "neg")
        engine.resolve("ghost2.buzzfeed.com", RRType.A, 0.0, stream)
        later = engine.resolve(
            "ghost2.buzzfeed.com", RRType.A, engine.negative_ttl_s + 1.0, stream
        )
        assert not later.cache_hit

    def test_servfail_not_cached(self, world):
        engine = self._engine(world)
        stream = RandomStream(316, "neg")
        first = engine.resolve("x.unknown.zone.example", RRType.A, 0.0, stream)
        second = engine.resolve("x.unknown.zone.example", RRType.A, 1.0, stream)
        assert first.rcode is RCode.SERVFAIL
        assert not second.cache_hit
