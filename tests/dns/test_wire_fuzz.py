"""Wire-codec robustness: arbitrary and mutated bytes must never crash.

The decoder's contract is: return a message or raise
:class:`DNSDecodeError`.  Anything else (IndexError, struct.error,
infinite loop) is a bug; these fuzz properties pin that down.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DNSDecodeError
from repro.dns.message import DNSMessage, make_query
from repro.dns.wire import decode_message, encode_message


class TestDecodeFuzz:
    @given(st.binary(max_size=256))
    @settings(max_examples=300)
    def test_arbitrary_bytes_never_crash(self, data):
        try:
            message = decode_message(data)
        except DNSDecodeError:
            return
        assert isinstance(message, DNSMessage)

    @given(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=255),
    )
    def test_single_byte_mutations_never_crash(self, position, value):
        wire = bytearray(encode_message(make_query("www.example.com")))
        position %= len(wire)
        wire[position] = value
        try:
            decode_message(bytes(wire))
        except DNSDecodeError:
            pass

    @given(st.integers(min_value=0, max_value=40))
    def test_truncations_never_crash(self, cut):
        wire = encode_message(make_query("fuzz.example.net"))
        truncated = wire[: max(0, len(wire) - cut)]
        try:
            decode_message(truncated)
        except DNSDecodeError:
            pass

    @given(st.binary(min_size=1, max_size=64))
    def test_appended_garbage_rejected(self, garbage):
        wire = encode_message(make_query("x.org")) + garbage
        try:
            message = decode_message(wire)
        except DNSDecodeError:
            return
        # Only possible if the garbage happened to parse as records for
        # the header's counts — impossible here since counts are fixed.
        assert isinstance(message, DNSMessage)
