"""EDNS Client Subnet: the localization fix the paper points toward."""

import pytest

from repro import build_world
from repro.cdn.catalog import spec_for
from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.addressing import prefix24
from repro.core.world import WorldConfig
from repro.dns.message import RRType
from repro.geo.regions import US_CITIES, city_named


@pytest.fixture(scope="module")
def ecs_world():
    return build_world(WorldConfig(ecs_enabled=True))


def _device(world, carrier, home, key):
    operator = world.operators[carrier]
    from repro.geo.regions import cities_for

    return MobileDevice(
        device_id=key,
        carrier_key=carrier,
        mobility=MobilityModel(
            home_city=city_named(home),
            candidate_cities=cities_for(operator.country),
            seed=404,
            device_key=key,
            travel_probability=0.0,
        ),
    )


class TestRegionalisedPools:
    def test_client_24_identifies_egress(self, world):
        operator = world.operators["verizon"]
        device = _device(world, "verizon", "Seattle", "ecs-dev-1")
        attachment = operator.attachment(device, now=0.0)
        located = operator.locate_client_ip(attachment.client_ip)
        assert located is not None
        assert located.distance_km(attachment.egress.location) < 1.0

    def test_foreign_ip_not_located(self, world):
        operator = world.operators["verizon"]
        assert operator.locate_client_ip("203.0.113.5") is None

    def test_world_locates_client_pools(self, world):
        operator = world.operators["att"]
        device = _device(world, "att", "Boston", "ecs-dev-2")
        attachment = operator.attachment(device, now=0.0)
        located = world.locate_ip(attachment.client_ip)
        assert located is not None
        location, is_cellular = located
        assert is_cellular


class TestEcsSelection:
    def test_cdn_maps_on_client_subnet(self, ecs_world):
        provider = ecs_world.cdns["usonly"]
        spec = spec_for("www.buzzfeed.com")
        operator = ecs_world.operators["verizon"]
        seattle = _device(ecs_world, "verizon", "Seattle", "ecs-dev-3")
        miami = _device(ecs_world, "verizon", "Miami", "ecs-dev-4")
        picks = {}
        for device in (seattle, miami):
            attachment = operator.attachment(device, now=0.0)
            subnet = prefix24(attachment.client_ip)
            replicas = provider.select_replicas(
                spec, "198.18.0.1", 0.0, client_subnet=subnet
            )
            cluster = provider.cluster_of_ip(replicas[0].ip)
            picks[device.device_id] = cluster.city.name
        # Opposite-coast clients land on different clusters even though
        # the querying resolver address was identical.
        assert picks["ecs-dev-3"] != picks["ecs-dev-4"]

    def test_ecs_replicas_near_client(self, ecs_world, stream):
        operator = ecs_world.operators["verizon"]
        device = _device(ecs_world, "verizon", "Seattle", "ecs-dev-5")
        attachment = operator.attachment(device, now=0.0)
        from repro.cellnet.radio import RadioTechnology

        origin = operator.probe_origin(
            device, 0.0, stream, technology=RadioTechnology.LTE
        )
        result = operator.resolve_local(
            device, origin, attachment, "www.buzzfeed.com", RRType.A, 0.0, stream
        )
        provider = ecs_world.cdns["usonly"]
        cluster = provider.cluster_of_ip(result.addresses[0])
        distance = cluster.location.distance_km(device.location(0.0))
        assert distance < 1500.0  # Seattle's nearest usonly cluster region


class TestEcsCacheScoping:
    def test_answers_not_shared_across_subnets(self, ecs_world, stream):
        engine = ecs_world.operators["verizon"].deployment.externals[0].engine
        first = engine.resolve(
            "www.buzzfeed.com", RRType.A, 0.0, stream,
            client_subnet="16.7.0.0/24",
        )
        cross = engine.resolve(
            "www.buzzfeed.com", RRType.A, 1.0, stream,
            client_subnet="16.7.99.0/24",
        )
        same = engine.resolve(
            "www.buzzfeed.com", RRType.A, 2.0, stream,
            client_subnet="16.7.0.0/24",
        )
        assert not first.cache_hit
        assert not cross.cache_hit  # different subnet: fresh fetch
        assert same.cache_hit  # same subnet within TTL: served from cache

    def test_ecs_skips_background_warmth(self, ecs_world, stream):
        engine = ecs_world.operators["att"].deployment.externals[0].engine
        engine.background_warm_prob = 1.0
        result = engine.resolve(
            "www.google.com", RRType.A, 0.0, stream,
            client_subnet="16.2.5.0/24",
        )
        assert not result.cache_hit


class TestBaselineUnaffected:
    def test_default_world_has_ecs_off(self, world):
        assert not world.google_dns.ecs_enabled
        assert all(
            not operator.ecs_enabled for operator in world.operators.values()
        )
