"""Zones and the zone directory."""

import pytest

from repro.core.errors import ZoneError
from repro.dns.message import RCode, ResourceRecord, RRType
from repro.dns.zone import Zone, ZoneDirectory


@pytest.fixture()
def zone():
    z = Zone("example.com")
    z.add_a("www.example.com", ["10.0.0.1", "10.0.0.2"], ttl=60)
    z.add_cname("m.example.com", "www.example.com", ttl=300)
    z.add_cname("cdn.example.com", "edge.other-cdn.net", ttl=300)
    return z


class TestZoneBuilding:
    def test_rejects_out_of_zone_records(self, zone):
        with pytest.raises(ZoneError):
            zone.add(ResourceRecord("www.other.com", RRType.A, 60, "10.0.0.1"))

    def test_rejects_duplicate_cname(self, zone):
        with pytest.raises(ZoneError):
            zone.add_cname("m.example.com", "elsewhere.example.com", ttl=60)

    def test_len_counts_records(self, zone):
        assert len(zone) == 4

    def test_remove(self, zone):
        zone.remove("www.example.com", RRType.A)
        rcode, answers = zone.lookup("www.example.com", RRType.A)
        assert answers == []


class TestZoneLookup:
    def test_direct_a(self, zone):
        rcode, answers = zone.lookup("www.example.com", RRType.A)
        assert rcode is RCode.NOERROR
        assert [r.data for r in answers] == ["10.0.0.1", "10.0.0.2"]

    def test_cname_chase_in_zone(self, zone):
        rcode, answers = zone.lookup("m.example.com", RRType.A)
        assert rcode is RCode.NOERROR
        assert answers[0].rtype is RRType.CNAME
        assert [r.data for r in answers if r.rtype is RRType.A] == [
            "10.0.0.1",
            "10.0.0.2",
        ]

    def test_cname_leaving_zone_ends_chain(self, zone):
        rcode, answers = zone.lookup("cdn.example.com", RRType.A)
        assert rcode is RCode.NOERROR
        assert len(answers) == 1
        assert answers[0].data == "edge.other-cdn.net"

    def test_nxdomain(self, zone):
        rcode, answers = zone.lookup("missing.example.com", RRType.A)
        assert rcode is RCode.NXDOMAIN

    def test_nodata_for_existing_name(self, zone):
        rcode, answers = zone.lookup("www.example.com", RRType.TXT)
        assert rcode is RCode.NOERROR
        assert answers == []

    def test_out_of_zone_refused(self, zone):
        rcode, _ = zone.lookup("www.other.com", RRType.A)
        assert rcode is RCode.REFUSED

    def test_cname_loop_protection(self):
        zone = Zone("loop.net")
        zone.add_cname("a.loop.net", "b.loop.net", ttl=60)
        zone.add_cname("b.loop.net", "a.loop.net", ttl=60)
        rcode, answers = zone.lookup("a.loop.net", RRType.A)
        # The chase gives up without hanging; partial chain is returned.
        assert rcode is RCode.NOERROR
        assert len(answers) <= 2 * 8


class TestZoneDirectory:
    def test_longest_suffix_wins(self):
        directory = ZoneDirectory()
        directory.register("com", "com-authority")
        directory.register("example.com", "example-authority")
        assert directory.authority_for("www.example.com") == "example-authority"
        assert directory.authority_for("other.com") == "com-authority"

    def test_unknown_returns_none(self):
        directory = ZoneDirectory()
        directory.register("example.com", "x")
        assert directory.authority_for("nowhere.org") is None

    def test_duplicate_registration_rejected(self):
        directory = ZoneDirectory()
        directory.register("example.com", "x")
        with pytest.raises(ZoneError):
            directory.register("example.com", "y")

    def test_memo_invalidated_by_register(self):
        directory = ZoneDirectory()
        directory.register("com", "com-authority")
        assert directory.authority_for("www.example.com") == "com-authority"
        directory.register("example.com", "example-authority")
        assert directory.authority_for("www.example.com") == "example-authority"
