"""Indirect resolution structures and pairing policies."""

import pytest

from repro.core.errors import ConfigError
from repro.dns.indirect import (
    AnycastPairing,
    ClientFacingAddress,
    DeploymentKind,
    DnsDeployment,
    LoadBalancedPairing,
    ResolverSite,
    StickyPoolPairing,
    TieredPairing,
    group_by_site,
)
from repro.geo.regions import city_named


class _FakeResolver:
    """Stands in for ExternalResolver (only .site and .ip are used)."""

    def __init__(self, ip, site):
        self.ip = ip
        self.site = site
        self.host = None


def _sites(count):
    cities = ["New York", "Los Angeles", "Chicago", "Dallas", "Seattle"]
    return [
        ResolverSite(index=index, city=city_named(cities[index % len(cities)]))
        for index in range(count)
    ]


def _resolvers(sites, per_site):
    resolvers = []
    for site in sites:
        for machine in range(per_site):
            resolvers.append(
                _FakeResolver(f"198.18.{site.index}.{machine + 1}", site)
            )
    return resolvers


ADDRESS = ClientFacingAddress(ip="198.18.100.1", anycast=True)


class TestTieredPairing:
    def test_fixed_pairs(self):
        sites = _sites(2)
        resolvers = _resolvers(sites, 1)
        pairing = TieredPairing(pair_of={"198.18.100.1": resolvers[0]})
        for now in (0.0, 1e6, 2e6):
            assert pairing.external_for(ADDRESS, "dev", 0, now) is resolvers[0]

    def test_unknown_front_raises(self):
        pairing = TieredPairing(pair_of={})
        with pytest.raises(ConfigError):
            pairing.external_for(ADDRESS, "dev", 0, 0.0)


class TestStickyPoolPairing:
    def _pairing(self, stickiness, shared_home=True, members=4):
        sites = _sites(1)
        pool = _resolvers(sites, members)
        return (
            StickyPoolPairing(
                pools={ADDRESS.ip: pool},
                stickiness=stickiness,
                rehome_period_s=1e9,
                seed=11,
                shared_home=shared_home,
            ),
            pool,
        )

    def test_full_stickiness_is_constant(self):
        pairing, pool = self._pairing(1.0)
        picks = {
            pairing.external_for(ADDRESS, "dev", 0, float(t)).ip
            for t in range(50)
        }
        assert len(picks) == 1

    def test_zero_stickiness_spreads(self):
        pairing, pool = self._pairing(0.0)
        picks = {
            pairing.external_for(ADDRESS, "dev", 0, float(t)).ip
            for t in range(200)
        }
        assert len(picks) == len(pool)

    def test_shared_home_is_common_across_devices(self):
        pairing, _ = self._pairing(1.0, shared_home=True)
        a = pairing.external_for(ADDRESS, "dev-a", 0, 0.0)
        b = pairing.external_for(ADDRESS, "dev-b", 0, 0.0)
        assert a is b

    def test_aggregate_consistency_matches_stickiness(self):
        pairing, pool = self._pairing(0.5, members=2)
        picks = [
            pairing.external_for(ADDRESS, "dev", 0, float(t)).ip
            for t in range(2000)
        ]
        top_share = max(picks.count(ip) for ip in set(picks)) / len(picks)
        # stickiness 0.5 over two members -> ~75% on the primary.
        assert 0.65 < top_share < 0.85

    def test_missing_pool_raises(self):
        pairing, _ = self._pairing(0.5)
        other = ClientFacingAddress(ip="198.18.200.1")
        with pytest.raises(ConfigError):
            pairing.external_for(other, "dev", 0, 0.0)


class TestAnycastPairing:
    def _pairing(self, flutter=0.0, machine_epoch=None):
        sites = _sites(3)
        resolvers = _resolvers(sites, 2)
        return (
            AnycastPairing(
                by_site=group_by_site(resolvers),
                seed=5,
                site_flutter=flutter,
                machine_epoch_s=machine_epoch,
            ),
            resolvers,
        )

    def test_follows_site_hint(self):
        pairing, _ = self._pairing()
        pick = pairing.external_for(ADDRESS, "dev", 1, 0.0)
        assert pick.site.index == 1

    def test_stable_machine_without_epoch(self):
        pairing, _ = self._pairing()
        picks = {
            pairing.external_for(ADDRESS, "dev", 0, float(t)).ip
            for t in range(20)
        }
        assert len(picks) == 1

    def test_machine_epoch_rotates(self):
        pairing, _ = self._pairing(machine_epoch=3600.0)
        picks = {
            pairing.external_for(ADDRESS, "dev", 0, t * 3600.0).ip
            for t in range(40)
        }
        assert len(picks) == 2  # both machines of the site get used

    def test_flutter_changes_site_sometimes(self):
        pairing, _ = self._pairing(flutter=0.5)
        sites_seen = {
            pairing.external_for(ADDRESS, "dev", 0, t * 3600.0).site.index
            for t in range(60)
        }
        assert len(sites_seen) > 1

    def test_empty_sites_raise(self):
        pairing = AnycastPairing(by_site={}, seed=1)
        with pytest.raises(ConfigError):
            pairing.external_for(ADDRESS, "dev", 0, 0.0)


class TestLoadBalancedPairing:
    def test_spreads_over_epochs(self):
        sites = _sites(2)
        resolvers = _resolvers(sites, 3)
        pairing = LoadBalancedPairing(externals=resolvers, seed=9, coherence_s=600.0)
        picks = {
            pairing.external_for(ADDRESS, "dev", 0, t * 600.0).ip
            for t in range(120)
        }
        assert len(picks) == len(resolvers)

    def test_coherent_within_epoch(self):
        sites = _sites(2)
        resolvers = _resolvers(sites, 3)
        pairing = LoadBalancedPairing(externals=resolvers, seed=9, coherence_s=600.0)
        assert (
            pairing.external_for(ADDRESS, "dev", 0, 0.0).ip
            == pairing.external_for(ADDRESS, "dev", 0, 599.0).ip
        )

    def test_empty_raises(self):
        pairing = LoadBalancedPairing(externals=[], seed=1)
        with pytest.raises(ConfigError):
            pairing.external_for(ADDRESS, "dev", 0, 0.0)


class TestDnsDeployment:
    def _deployment(self):
        sites = _sites(3)
        resolvers = _resolvers(sites, 1)
        addresses = [
            ClientFacingAddress(ip="198.18.100.1", anycast=True),
            ClientFacingAddress(ip="198.18.100.2", anycast=True),
        ]
        pairing = AnycastPairing(by_site=group_by_site(resolvers), seed=5)
        return DnsDeployment(
            kind=DeploymentKind.ANYCAST,
            client_addresses=addresses,
            externals=resolvers,
            sites=sites,
            pairing=pairing,
        )

    def test_requires_addresses_and_externals(self):
        sites = _sites(1)
        resolvers = _resolvers(sites, 1)
        with pytest.raises(ConfigError):
            DnsDeployment(
                kind=DeploymentKind.ANYCAST,
                client_addresses=[],
                externals=resolvers,
                sites=sites,
                pairing=AnycastPairing(by_site=group_by_site(resolvers), seed=1),
            )

    def test_client_address_assignment_stable(self):
        deployment = self._deployment()
        first = deployment.client_address_for("device-1", seed=3)
        again = deployment.client_address_for("device-1", seed=3)
        assert first is again

    def test_serving_site_anycast_follows_hint(self):
        deployment = self._deployment()
        address = deployment.client_addresses[0]
        assert deployment.serving_site(address, 2).index == 2

    def test_external_lookup_by_ip(self):
        deployment = self._deployment()
        ip = deployment.external_ips()[0]
        assert deployment.external_by_ip(ip).ip == ip
        assert deployment.external_by_ip("203.0.113.1") is None

    def test_group_by_site(self):
        sites = _sites(2)
        resolvers = _resolvers(sites, 2)
        grouped = group_by_site(resolvers)
        assert sorted(grouped) == [0, 1]
        assert all(len(members) == 2 for members in grouped.values())
