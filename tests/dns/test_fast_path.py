"""DNS resolution fast path: stats accounting, key safety, plan replay.

Regression tests for the compiled-plan / tuple-key optimisation work:

* every ``resolve`` call lands in the cache statistics exactly once
  (including modelled background-warm hits);
* adversarial query names carrying the old flattening sentinels
  (``.__ecs__.`` / ``.__scope__.``) cannot collide across scopes or
  client subnets, because keys are structured tuples;
* ``normalize_name`` is idempotent and case-folding (property-based);
* a compiled-plan replay is byte-identical to the uncompiled reference
  walk (``_fetch_chain``) across randomized zone layouts.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.addressing import PrefixAllocator
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.internet import VirtualInternet
from repro.core.node import Host
from repro.core.rng import RandomStream
from repro.dns.authoritative import ResolverEchoAuthority, StaticAuthority
from repro.dns.cache import DnsCache
from repro.dns.message import DNSError, RCode, ResourceRecord, RRType, normalize_name
from repro.dns.recursive import RecursiveEngine
from repro.dns.zone import Zone, ZoneDirectory
from repro.geo.coordinates import GeoPoint

CHI = GeoPoint(41.8781, -87.6298)
DC = GeoPoint(38.9072, -77.0369)
SEA = GeoPoint(47.6062, -122.3321)
MIA = GeoPoint(25.7617, -80.1918)


def _build_engine(zones, echo_apex=None):
    """A resolver engine over ``zones`` = {apex: [(add_fn_name, args)]}."""
    net = VirtualInternet()
    directory = ZoneDirectory()
    allocator = PrefixAllocator.parse("198.18.0.0/16")
    counter = [0]

    def make_host(name, location):
        system = AutonomousSystem(
            asn=64500 + counter[0],
            name=name,
            kind=ASKind.CONTENT,
            firewall=FirewallPolicy(blocks_inbound=False),
        )
        counter[0] += 1
        prefix = allocator.allocate24()
        system.add_prefix(prefix)
        net.register_system(system)
        host = Host(ip=prefix.host(1), name=name, asys=system, location=location)
        net.register_host(host)
        return host

    locations = [DC, SEA, MIA]
    for index, (apex, entries) in enumerate(zones.items()):
        zone = Zone(apex)
        for method, args in entries:
            getattr(zone, method)(*args)
        authority = StaticAuthority(
            host=make_host(f"ns.{apex}", locations[index % len(locations)]),
            zone_apex=apex,
            zone=zone,
        )
        directory.register(apex, authority)
    echo = None
    if echo_apex is not None:
        echo = ResolverEchoAuthority(
            host=make_host(f"adns.{echo_apex}", CHI), zone_apex=echo_apex
        )
        directory.register(echo_apex, echo)
    engine = RecursiveEngine(
        host=make_host("resolver", CHI), directory=directory, internet=net
    )
    return engine, echo


@pytest.fixture()
def engine_with_echo():
    engine, echo = _build_engine(
        {
            "site.com": [
                ("add_cname", ("www.site.com", "edge.cdn-sim.net", 3600)),
                ("add_a", ("direct.site.com", ["10.1.1.1"], 300)),
                ("add_a", ("evil.__ecs__.16-7-0-0.site.com", ["10.2.2.2"], 600)),
                ("add_a", ("evil.__scope__.carrier-x.site.com", ["10.3.3.3"], 600)),
            ],
            "cdn-sim.net": [
                ("add_a", ("edge.cdn-sim.net", ["10.9.9.1", "10.9.9.2"], 30)),
            ],
        },
        echo_apex="whoami.probe.net",
    )
    return engine, echo


def _a(name, ttl, ip):
    return ResourceRecord(name, RRType.A, ttl, ip)


class TestCacheStatsAccounting:
    """hits + misses == lookups == resolve calls, warm path included."""

    def test_every_resolve_counts_exactly_once(self, engine_with_echo):
        engine, _ = engine_with_echo
        engine.background_warm_prob = 1.0  # exercise the warm-hit path
        stream = RandomStream(42, "stats")
        stats = engine.cache.stats
        calls = 0
        for round_index in range(30):
            now = round_index * 500.0
            # Popular name: cold walks, plan replays, warm hits, TTL
            # expiries (30 s CDN TTL, 500 s spacing) all mixed together.
            engine.resolve("www.site.com", RRType.A, now, stream)
            # Long-TTL name: genuine same-entry cache hits.
            engine.resolve("direct.site.com", RRType.A, now, stream)
            engine.resolve("direct.site.com", RRType.A, now + 1.0, stream)
            # Zero-TTL echo name: never cached, always a miss.
            engine.resolve(
                f"t{round_index}.whoami.probe.net", RRType.A, now, stream
            )
            # NXDOMAIN inside a zone: negative-cached, still one lookup.
            engine.resolve("missing.site.com", RRType.A, now, stream)
            # Unknown zone: SERVFAIL, uncacheable, still one lookup.
            engine.resolve("no.such.zone.example", RRType.A, now, stream)
            calls += 6
        assert stats.lookups == calls
        assert stats.hits + stats.misses == stats.lookups
        # The mix above must actually exercise both counters.
        assert stats.hits > 0
        assert stats.misses > 0

    def test_warm_hit_counts_as_hit_not_miss(self, engine_with_echo):
        engine, _ = engine_with_echo
        engine.background_warm_prob = 1.0
        stream = RandomStream(7, "warm-stats")
        stats = engine.cache.stats
        for index in range(20):
            result = engine.resolve(
                "www.site.com", RRType.A, index * 1000.0, stream
            )
            if result.cache_hit and index == 0:
                # First-ever lookup can only be a *warm* hit (nothing was
                # cached); it must land in hits, and only once.
                assert stats.hits == 1
                assert stats.misses == 0
            assert stats.lookups == index + 1


class TestAdversarialQnames:
    """Sentinel-bearing names cannot collide across scope/subnet keys."""

    def test_scope_sentinel_in_name_does_not_collide(self):
        cache = DnsCache()
        # Under the old flattening scheme (scope appended to the name
        # with a ``.__scope__.`` sentinel) these two entries shared a key.
        cache.put_answer(
            "x.com.__scope__.a", RRType.A,
            [_a("x.com.__scope__.a", 60, "10.0.0.1")], now=0.0,
        )
        cache.put_answer(
            "x.com", RRType.A, [_a("x.com", 60, "10.0.0.2")], now=0.0,
            scope="a",
        )
        plain = cache.get("x.com.__scope__.a", RRType.A, now=1.0)
        scoped = cache.get("x.com", RRType.A, now=1.0, scope="a")
        assert [record.data for record in plain] == ["10.0.0.1"]
        assert [record.data for record in scoped] == ["10.0.0.2"]
        # The genuinely unscoped plain name was never inserted.
        assert cache.get("x.com", RRType.A, now=1.0) is None

    def test_ecs_sentinel_in_name_does_not_collide(self):
        cache = DnsCache()
        cache.put_answer(
            "x.com.__ecs__.16-7-0-0", RRType.A,
            [_a("x.com.__ecs__.16-7-0-0", 60, "10.0.0.1")], now=0.0,
        )
        cache.put_answer(
            "x.com", RRType.A, [_a("x.com", 60, "10.0.0.2")], now=0.0,
            subnet="16.7.0.0/24",
        )
        plain = cache.get("x.com.__ecs__.16-7-0-0", RRType.A, now=1.0)
        scoped = cache.get("x.com", RRType.A, now=1.0, subnet="16.7.0.0/24")
        assert [record.data for record in plain] == ["10.0.0.1"]
        assert [record.data for record in scoped] == ["10.0.0.2"]
        assert cache.get("x.com", RRType.A, now=1.0) is None

    def test_scope_and_subnet_are_independent_dimensions(self):
        cache = DnsCache()
        cache.put_answer(
            "x.com", RRType.A, [_a("x.com", 60, "10.0.0.1")], now=0.0,
            scope="label",
        )
        assert cache.get("x.com", RRType.A, now=1.0, subnet="label") is None
        assert cache.get("x.com", RRType.A, now=1.0, scope="label") is not None

    def test_engine_sentinel_qname_scoped_per_subnet(self, engine_with_echo):
        engine, _ = engine_with_echo
        qname = "evil.__ecs__.16-7-0-0.site.com"
        stream = RandomStream(11, "adversarial")
        first = engine.resolve(qname, RRType.A, 0.0, stream)
        assert first.rcode is RCode.NOERROR and not first.cache_hit
        # Same sentinel-bearing name under a real subnet: a *different*
        # cache partition, so it must walk fresh, then hit its own entry.
        cross = engine.resolve(
            qname, RRType.A, 1.0, stream, client_subnet="16.7.0.0/24"
        )
        assert not cross.cache_hit
        again = engine.resolve(
            qname, RRType.A, 2.0, stream, client_subnet="16.7.0.0/24"
        )
        assert again.cache_hit
        # And the unscoped entry is still intact, not evicted or crossed.
        unscoped = engine.resolve(qname, RRType.A, 3.0, stream)
        assert unscoped.cache_hit

    def test_engine_sentinel_qname_scoped_per_cache_scope(self, engine_with_echo):
        engine, _ = engine_with_echo
        qname = "evil.__scope__.carrier-x.site.com"
        stream = RandomStream(12, "adversarial")
        first = engine.resolve(qname, RRType.A, 0.0, stream)
        assert first.rcode is RCode.NOERROR and not first.cache_hit
        cross = engine.resolve(
            qname, RRType.A, 1.0, stream, cache_scope="carrier-x"
        )
        assert not cross.cache_hit
        again = engine.resolve(
            qname, RRType.A, 2.0, stream, cache_scope="carrier-x"
        )
        assert again.cache_hit
        unscoped = engine.resolve(qname, RRType.A, 3.0, stream)
        assert unscoped.cache_hit


# -- property tests -----------------------------------------------------------

_LABEL = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_",
    min_size=1,
    max_size=12,
)
_NAME = st.lists(_LABEL, min_size=1, max_size=5).map(".".join)


class TestNormalizeNameProperties:
    @given(_NAME)
    def test_idempotent(self, name):
        once = normalize_name(name)
        assert normalize_name(once) == once

    @given(_NAME)
    def test_case_folds(self, name):
        assert normalize_name(name.upper()) == normalize_name(name.lower())

    @given(_NAME, st.sampled_from(["", ".", " ", "  ", ". "]))
    def test_trailing_dot_and_whitespace_vanish(self, name, suffix):
        assert normalize_name(name + suffix) == normalize_name(name)

    @given(_NAME)
    def test_interned_keys_compare_equal(self, name):
        # Tuple cache keys rely on normalised names being interned so
        # equality short-circuits on identity.
        assert normalize_name(name.upper()) is normalize_name(name + ".")

    def test_length_limits_still_enforced(self):
        with pytest.raises(DNSError):
            normalize_name("a" * 64 + ".com")
        with pytest.raises(DNSError):
            normalize_name(".".join(["abcdefgh"] * 32))


@st.composite
def _zone_layout(draw):
    """A randomized CNAME chain across 1-3 zones ending in an A rrset."""
    zone_count = draw(st.integers(min_value=1, max_value=3))
    depth = draw(st.integers(min_value=0, max_value=3))
    cname_ttls = draw(
        st.lists(
            st.integers(min_value=1, max_value=3600),
            min_size=depth, max_size=depth,
        )
    )
    a_ttl = draw(st.integers(min_value=1, max_value=3600))
    a_count = draw(st.integers(min_value=1, max_value=4))
    return zone_count, depth, cname_ttls, a_ttl, a_count


class TestPlanReplayMatchesReferenceWalk:
    """Compiled-plan replay ≡ uncached ``_fetch_chain``, byte for byte."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(_zone_layout(), st.integers(min_value=0, max_value=2**31))
    def test_replay_is_byte_identical(self, layout, seed):
        zone_count, depth, cname_ttls, a_ttl, a_count = layout
        apexes = [f"z{index}.example" for index in range(zone_count)]
        chain = ["www.z0.example"] + [
            f"n{index}.z{index % zone_count}.example" for index in range(1, depth + 1)
        ]
        zones = {apex: [] for apex in apexes}
        for index in range(depth):
            name = chain[index]
            zones[name.split(".", 1)[1]].append(
                ("add_cname", (name, chain[index + 1], cname_ttls[index]))
            )
        terminal = chain[-1]
        addresses = [f"10.7.{index}.1" for index in range(a_count)]
        zones[terminal.split(".", 1)[1]].append(
            ("add_a", (terminal, addresses, a_ttl))
        )
        engine, _ = _build_engine(zones)

        qname, qtype, now = "www.z0.example", RRType.A, 0.0
        compile_stream = RandomStream(seed, "oracle")
        first = engine._resolve_upstream(qname, qtype, now, compile_stream, None)
        assert engine._plans.get((qname, qtype, None)) is not None

        replay_stream = RandomStream(seed, "oracle")
        replay = engine._resolve_upstream(qname, qtype, now, replay_stream, None)

        oracle_stream = RandomStream(seed, "oracle")
        oracle = engine._fetch_chain(
            qname, qtype, now, oracle_stream, timed=True
        )

        for result in (first, replay):
            assert result.rcode is oracle.rcode
            assert result.qname == oracle.qname
            # Bit-identical: same draws, same left-to-right float sums.
            assert result.upstream_ms == oracle.upstream_ms
            assert list(result.records) == list(oracle.records)
            assert result.addresses() == oracle.addresses()
            assert result.cname_chain() == oracle.cname_chain()
            assert list(result.authorities) == list(oracle.authorities)
