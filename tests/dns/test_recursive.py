"""Recursive resolution engine: chains, caching, background warmth."""

import pytest

from repro.core.addressing import Prefix, PrefixAllocator
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.internet import VirtualInternet
from repro.core.node import Host
from repro.core.rng import RandomStream
from repro.dns.authoritative import ResolverEchoAuthority, StaticAuthority
from repro.dns.message import RCode, RRType
from repro.dns.recursive import RecursiveEngine
from repro.dns.zone import Zone, ZoneDirectory
from repro.geo.coordinates import GeoPoint

CHI = GeoPoint(41.8781, -87.6298)
DC = GeoPoint(38.9072, -77.0369)


@pytest.fixture()
def setup():
    """A resolver plus two authorities joined by a CNAME chain."""
    net = VirtualInternet()
    directory = ZoneDirectory()
    allocator = PrefixAllocator.parse("198.18.0.0/16")

    def make_host(name, location):
        system = AutonomousSystem(
            asn=64500 + make_host.counter,
            name=name,
            kind=ASKind.CONTENT,
            firewall=FirewallPolicy(blocks_inbound=False),
        )
        make_host.counter += 1
        prefix = allocator.allocate24()
        system.add_prefix(prefix)
        net.register_system(system)
        host = Host(ip=prefix.host(1), name=name, asys=system, location=location)
        net.register_host(host)
        return host

    make_host.counter = 0

    origin_zone = Zone("site.com")
    origin_zone.add_cname("www.site.com", "www-site.edge.cdn-sim.net", ttl=3600)
    origin_authority = StaticAuthority(
        host=make_host("ns.site.com", DC), zone_apex="site.com", zone=origin_zone
    )
    directory.register("site.com", origin_authority)

    cdn_zone = Zone("cdn-sim.net")
    cdn_zone.add_a("www-site.edge.cdn-sim.net", ["10.9.9.1", "10.9.9.2"], ttl=30)
    cdn_authority = StaticAuthority(
        host=make_host("ns.cdn-sim.net", DC), zone_apex="cdn-sim.net", zone=cdn_zone
    )
    directory.register("cdn-sim.net", cdn_authority)

    echo = ResolverEchoAuthority(
        host=make_host("adns.probe.net", CHI), zone_apex="whoami.probe.net"
    )
    directory.register("whoami.probe.net", echo)

    resolver_host = make_host("resolver", CHI)
    engine = RecursiveEngine(host=resolver_host, directory=directory, internet=net)
    return engine, directory, echo


class TestChainResolution:
    def test_cross_authority_cname_chase(self, setup):
        engine, _, _ = setup
        stream = RandomStream(1, "resolve")
        result = engine.resolve("www.site.com", RRType.A, now=0.0, stream=stream)
        assert result.rcode is RCode.NOERROR
        assert result.addresses() == ["10.9.9.1", "10.9.9.2"]
        assert not result.cache_hit
        assert result.upstream_ms > 0
        assert len(result.authorities) == 2

    def test_upstream_time_reflects_authority_distance(self, setup):
        engine, _, _ = setup
        stream = RandomStream(2, "resolve")
        result = engine.resolve("www.site.com", RRType.A, 0.0, stream)
        # Two Chicago->DC round trips: ~20 ms total at the very least.
        assert result.upstream_ms > 15.0

    def test_cache_hit_is_instant(self, setup):
        engine, _, _ = setup
        stream = RandomStream(3, "resolve")
        engine.resolve("www.site.com", RRType.A, 0.0, stream)
        second = engine.resolve("www.site.com", RRType.A, 5.0, stream)
        assert second.cache_hit
        assert second.upstream_ms == 0.0
        assert second.addresses() == ["10.9.9.1", "10.9.9.2"]

    def test_short_ttl_expires(self, setup):
        engine, _, _ = setup
        stream = RandomStream(4, "resolve")
        engine.resolve("www.site.com", RRType.A, 0.0, stream)
        third = engine.resolve("www.site.com", RRType.A, 31.0, stream)
        assert not third.cache_hit

    def test_unknown_zone_servfails(self, setup):
        engine, _, _ = setup
        stream = RandomStream(5, "resolve")
        result = engine.resolve("no.such.zone.example", RRType.A, 0.0, stream)
        assert result.rcode is RCode.SERVFAIL

    def test_echo_answers_never_cached(self, setup):
        engine, _, echo = setup
        stream = RandomStream(6, "resolve")
        first = engine.resolve("t1.whoami.probe.net", RRType.A, 0.0, stream)
        second = engine.resolve("t1.whoami.probe.net", RRType.A, 1.0, stream)
        assert first.addresses() == [engine.host.ip]
        assert not second.cache_hit
        assert len(echo.log) == 2


class TestBackgroundWarmth:
    def test_warm_cap_one_hits_most_of_the_time(self, setup):
        # Effective warmth couples the cap with TTL liveness; for the
        # 30 s zone TTL at the default 12 s background interval ~92% of
        # cold lookups should find a live entry.
        engine, _, _ = setup
        engine.background_warm_prob = 1.0
        stream = RandomStream(7, "warm")
        hits = 0
        for index in range(60):
            result = engine.resolve(
                "www.site.com", RRType.A, now=index * 1000.0, stream=stream
            )
            hits += result.cache_hit
        assert hits > 40

    def test_warm_hits_pay_no_upstream_time(self, setup):
        engine, _, _ = setup
        engine.background_warm_prob = 1.0
        stream = RandomStream(8, "warm")
        for index in range(20):
            result = engine.resolve(
                "www.site.com", RRType.A, now=index * 1000.0, stream=stream
            )
            if result.cache_hit:
                assert result.upstream_ms == 0.0
                a_ttls = [
                    record.ttl
                    for record in result.records
                    if record.rtype is RRType.A
                ]
                assert a_ttls and all(0 <= ttl <= 30 for ttl in a_ttls)
                break
        else:
            import pytest

            pytest.fail("no warm hit in 20 cold lookups at cap 1.0")

    def test_warm_probability_zero_never_synthesises(self, setup):
        engine, _, _ = setup
        engine.background_warm_prob = 0.0
        stream = RandomStream(9, "warm")
        result = engine.resolve("www.site.com", RRType.A, 0.0, stream)
        assert not result.cache_hit

    def test_zero_ttl_names_never_warm(self, setup):
        engine, _, echo = setup
        engine.background_warm_prob = 1.0
        stream = RandomStream(10, "warm")
        result = engine.resolve("t2.whoami.probe.net", RRType.A, 0.0, stream)
        assert not result.cache_hit

    def test_each_query_reaches_authority_once(self, setup):
        # The warm path must not double-query (it would double-count
        # observations at the echo authority and the CDN mappers).
        engine, _, echo = setup
        engine.background_warm_prob = 1.0
        stream = RandomStream(11, "warm")
        engine.resolve("t3.whoami.probe.net", RRType.A, 0.0, stream)
        assert len(echo.observations_for("t3.whoami.probe.net")) == 1

    def test_warmth_scales_with_ttl(self, setup):
        # A 2 s TTL should warm far less often than the 30 s one.
        engine, _, _ = setup
        engine.background_warm_prob = 1.0
        zone = engine.directory.authority_for("www.site.com")
        stream = RandomStream(12, "warm")
        short_hits = 0
        for index in range(80):
            alive = engine._background_warm_hit(2, stream)
            short_hits += alive
        long_hits = 0
        for index in range(80):
            long_hits += engine._background_warm_hit(60, stream)
        assert short_hits < long_hits
