"""TTL cache semantics and statistics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dns.cache import DnsCache
from repro.dns.message import ResourceRecord, RRType


def _a(name, ttl, ip="10.0.0.1"):
    return ResourceRecord(name, RRType.A, ttl, ip)


class TestBasicSemantics:
    def test_miss_then_hit(self):
        cache = DnsCache()
        assert cache.get("x.com", RRType.A, now=0.0) is None
        cache.put_answer("x.com", RRType.A, [_a("x.com", 60)], now=0.0)
        hit = cache.get("x.com", RRType.A, now=30.0)
        assert hit is not None

    def test_expiry(self):
        cache = DnsCache()
        cache.put_answer("x.com", RRType.A, [_a("x.com", 60)], now=0.0)
        assert cache.get("x.com", RRType.A, now=60.0) is None
        assert cache.stats.expirations == 1

    def test_ttl_ages(self):
        cache = DnsCache()
        cache.put_answer("x.com", RRType.A, [_a("x.com", 60)], now=0.0)
        hit = cache.get("x.com", RRType.A, now=45.0)
        assert hit[0].ttl == 15

    def test_min_ttl_governs_whole_answer(self):
        cache = DnsCache()
        records = [
            ResourceRecord("x.com", RRType.CNAME, 3600, "edge.net"),
            ResourceRecord("edge.net", RRType.A, 30, "10.0.0.1"),
        ]
        cache.put_answer("x.com", RRType.A, records, now=0.0)
        assert cache.get("x.com", RRType.A, now=29.0) is not None
        assert cache.get("x.com", RRType.A, now=31.0) is None

    def test_case_insensitive_keys(self):
        cache = DnsCache()
        cache.put_answer("X.COM", RRType.A, [_a("x.com", 60)], now=0.0)
        assert cache.get("x.com", RRType.A, now=1.0) is not None

    def test_invalidate_and_clear(self):
        cache = DnsCache()
        cache.put_answer("x.com", RRType.A, [_a("x.com", 60)], now=0.0)
        cache.invalidate("x.com", RRType.A)
        assert len(cache) == 0
        cache.put_answer("x.com", RRType.A, [_a("x.com", 60)], now=0.0)
        cache.clear()
        assert len(cache) == 0

    def test_put_groups_rrsets(self):
        cache = DnsCache()
        cache.put(
            [
                _a("x.com", 60, "10.0.0.1"),
                _a("x.com", 60, "10.0.0.2"),
                ResourceRecord("y.com", RRType.A, 120, "10.0.0.3"),
            ],
            now=0.0,
        )
        assert len(cache.get("x.com", RRType.A, now=1.0)) == 2
        assert len(cache.get("y.com", RRType.A, now=1.0)) == 1

    def test_flush_expired(self):
        cache = DnsCache()
        cache.put_answer("x.com", RRType.A, [_a("x.com", 10)], now=0.0)
        cache.put_answer("y.com", RRType.A, [_a("y.com", 100)], now=0.0)
        removed = cache.flush_expired(now=50.0)
        assert removed == 1
        assert ("y.com", RRType.A) in cache


class TestStats:
    def test_hit_rate(self):
        cache = DnsCache()
        cache.get("x.com", RRType.A, now=0.0)
        cache.put_answer("x.com", RRType.A, [_a("x.com", 60)], now=0.0)
        cache.get("x.com", RRType.A, now=1.0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert DnsCache().stats.hit_rate == 0.0


class TestProperties:
    @given(st.integers(min_value=1, max_value=86400), st.floats(0, 1e6))
    def test_entry_lives_exactly_ttl(self, ttl, start):
        cache = DnsCache()
        cache.put_answer("p.com", RRType.A, [_a("p.com", ttl)], now=start)
        assert cache.get("p.com", RRType.A, now=start + ttl - 0.5) is not None
        assert cache.get("p.com", RRType.A, now=start + ttl + 0.5) is None

    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=6))
    def test_remaining_ttl_never_negative(self, ttls):
        cache = DnsCache()
        records = [
            _a("m.com", ttl, f"10.0.0.{index + 1}")
            for index, ttl in enumerate(ttls)
        ]
        cache.put_answer("m.com", RRType.A, records, now=0.0)
        hit = cache.get("m.com", RRType.A, now=min(ttls) - 1)
        if hit is not None:
            assert all(record.ttl >= 0 for record in hit)
