"""RFC 1035 wire codec: hand-built vectors plus round-trip properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import DNSDecodeError
from repro.dns.message import (
    DNSMessage,
    Question,
    RCode,
    ResourceRecord,
    RRType,
    make_query,
    make_response,
)
from repro.dns.wire import decode_message, encode_message

labels = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=12,
).filter(lambda label: not label.startswith("-") and not label.endswith("-"))

names = st.lists(labels, min_size=1, max_size=5).map(".".join)
ipv4s = st.tuples(*([st.integers(0, 255)] * 4)).map(
    lambda parts: ".".join(str(p) for p in parts)
)
ttls = st.integers(min_value=0, max_value=2**31 - 1)


def a_records(owner=names):
    return st.builds(
        lambda name, ttl, ip: ResourceRecord(name, RRType.A, ttl, ip),
        owner, ttls, ipv4s,
    )


def cname_records():
    return st.builds(
        lambda name, ttl, target: ResourceRecord(name, RRType.CNAME, ttl, target),
        names, ttls, names,
    )


class TestVectors:
    def test_simple_query_roundtrip(self):
        query = make_query("www.example.com", RRType.A, msg_id=0x1234)
        decoded = decode_message(encode_message(query))
        assert decoded.msg_id == 0x1234
        assert decoded.question == Question("www.example.com", RRType.A)
        assert not decoded.is_response
        assert decoded.recursion_desired

    def test_response_flags_roundtrip(self):
        query = make_query("x.org")
        response = make_response(
            query,
            answers=[ResourceRecord("x.org", RRType.A, 300, "192.0.2.1")],
            rcode=RCode.NXDOMAIN,
            authoritative=True,
        )
        decoded = decode_message(encode_message(response))
        assert decoded.is_response
        assert decoded.authoritative
        assert decoded.rcode is RCode.NXDOMAIN
        assert decoded.answer_addresses() == ["192.0.2.1"]

    def test_compression_shrinks_repeated_names(self):
        answers = [
            ResourceRecord("a.very.long.domain.example", RRType.A, 60, "10.0.0.1"),
            ResourceRecord("a.very.long.domain.example", RRType.A, 60, "10.0.0.2"),
            ResourceRecord("b.very.long.domain.example", RRType.A, 60, "10.0.0.3"),
        ]
        query = make_query("a.very.long.domain.example")
        wire = encode_message(make_response(query, answers=answers))
        # Naive encoding would repeat the 28-byte name four times.
        assert len(wire) < 120

    def test_cname_rdata_compressed_and_decoded(self):
        query = make_query("www.site.com")
        response = make_response(
            query,
            answers=[
                ResourceRecord("www.site.com", RRType.CNAME, 600, "edge.site.com"),
                ResourceRecord("edge.site.com", RRType.A, 30, "10.1.2.3"),
            ],
        )
        decoded = decode_message(encode_message(response))
        assert decoded.cname_chain() == ["edge.site.com"]
        assert decoded.answer_addresses() == ["10.1.2.3"]

    def test_txt_roundtrip(self):
        record = ResourceRecord("t.example", RRType.TXT, 60, "hello world")
        message = DNSMessage(is_response=True, answers=[record])
        decoded = decode_message(encode_message(message))
        assert decoded.answers[0].data == "hello world"

    def test_aaaa_roundtrip(self):
        record = ResourceRecord(
            "t.example", RRType.AAAA, 60,
            "2001:0db8:0000:0000:0000:0000:0000:0001",
        )
        message = DNSMessage(is_response=True, answers=[record])
        decoded = decode_message(encode_message(message))
        assert decoded.answers[0].data == "2001:0db8:0000:0000:0000:0000:0000:0001"


class TestDecodeErrors:
    def test_truncated_header(self):
        with pytest.raises(DNSDecodeError):
            decode_message(b"\x00\x01\x02")

    def test_trailing_bytes_rejected(self):
        wire = encode_message(make_query("x.com")) + b"\x00"
        with pytest.raises(DNSDecodeError):
            decode_message(wire)

    def test_truncated_question(self):
        wire = encode_message(make_query("x.com"))
        with pytest.raises(DNSDecodeError):
            decode_message(wire[:-2])

    def test_pointer_loop_rejected(self):
        # Header claiming one question, then a self-referencing pointer.
        import struct

        header = struct.pack("!HHHHHH", 1, 0, 1, 0, 0, 0)
        evil = header + struct.pack("!H", 0xC000 | 12) + struct.pack("!HH", 1, 1)
        with pytest.raises(DNSDecodeError):
            decode_message(evil)


class TestRoundTripProperties:
    @given(st.integers(0, 0xFFFF), names, st.sampled_from([RRType.A, RRType.CNAME, RRType.TXT]))
    def test_query_roundtrip(self, msg_id, qname, qtype):
        query = make_query(qname, qtype, msg_id=msg_id)
        decoded = decode_message(encode_message(query))
        assert decoded.msg_id == msg_id
        assert decoded.question.qname == qname.lower()
        assert decoded.question.qtype is qtype

    @given(st.lists(a_records() | cname_records(), min_size=0, max_size=8))
    def test_response_roundtrip(self, answers):
        query = make_query("probe.example.net")
        response = make_response(query, answers=answers)
        decoded = decode_message(encode_message(response))
        assert decoded.answers == answers

    @given(
        st.lists(a_records(), max_size=4),
        st.lists(cname_records(), max_size=4),
    )
    def test_sections_keep_separation(self, answers, authorities):
        message = DNSMessage(
            msg_id=1,
            is_response=True,
            answers=list(answers),
            authorities=list(authorities),
        )
        decoded = decode_message(encode_message(message))
        assert decoded.answers == list(answers)
        assert decoded.authorities == list(authorities)
