"""DNS message model."""

import pytest

from repro.core.errors import DNSError
from repro.dns.message import (
    DNSMessage,
    Question,
    RCode,
    ResourceRecord,
    RRType,
    make_query,
    make_response,
    name_within,
    normalize_name,
)


class TestNormalizeName:
    def test_lowercases_and_strips_dot(self):
        assert normalize_name("WWW.Example.COM.") == "www.example.com"

    def test_root_is_empty(self):
        assert normalize_name(".") == ""
        assert normalize_name("") == ""

    def test_rejects_long_labels(self):
        with pytest.raises(DNSError):
            normalize_name("a" * 64 + ".com")

    def test_rejects_empty_labels(self):
        with pytest.raises(DNSError):
            normalize_name("a..b")

    def test_rejects_overlong_names(self):
        with pytest.raises(DNSError):
            normalize_name(".".join(["abcd"] * 60))


class TestNameWithin:
    def test_exact_and_subdomain(self):
        assert name_within("www.example.com", "example.com")
        assert name_within("example.com", "example.com")

    def test_not_suffix_trick(self):
        assert not name_within("badexample.com", "example.com")

    def test_root_contains_all(self):
        assert name_within("anything.net", "")


class TestResourceRecord:
    def test_normalises_owner_and_target(self):
        record = ResourceRecord("WWW.X.COM", RRType.CNAME, 60, "EDGE.Y.NET.")
        assert record.name == "www.x.com"
        assert record.data == "edge.y.net"

    def test_a_data_untouched(self):
        record = ResourceRecord("x.com", RRType.A, 60, "10.0.0.1")
        assert record.data == "10.0.0.1"

    def test_rejects_negative_ttl(self):
        with pytest.raises(DNSError):
            ResourceRecord("x.com", RRType.A, -1, "10.0.0.1")

    def test_with_ttl(self):
        record = ResourceRecord("x.com", RRType.A, 60, "10.0.0.1")
        aged = record.with_ttl(10)
        assert aged.ttl == 10 and record.ttl == 60


class TestMessages:
    def test_make_query(self):
        query = make_query("www.x.com", RRType.A, msg_id=7)
        assert query.msg_id == 7
        assert not query.is_response
        assert query.recursion_desired
        assert query.question == Question("www.x.com", RRType.A)

    def test_make_response_echoes_question(self):
        query = make_query("www.x.com")
        answer = ResourceRecord("www.x.com", RRType.A, 30, "10.0.0.1")
        response = make_response(query, answers=[answer])
        assert response.is_response
        assert response.msg_id == query.msg_id
        assert response.questions == query.questions
        assert response.answer_addresses() == ["10.0.0.1"]

    def test_rcode_propagates(self):
        response = make_response(make_query("x.com"), rcode=RCode.NXDOMAIN)
        assert response.rcode is RCode.NXDOMAIN

    def test_cname_chain_and_a_records(self):
        message = DNSMessage(
            is_response=True,
            answers=[
                ResourceRecord("a.com", RRType.CNAME, 300, "b.net"),
                ResourceRecord("b.net", RRType.A, 30, "10.0.0.1"),
                ResourceRecord("b.net", RRType.A, 30, "10.0.0.2"),
            ],
        )
        assert message.cname_chain() == ["b.net"]
        assert message.answer_addresses() == ["10.0.0.1", "10.0.0.2"]
        assert message.min_answer_ttl() == 30

    def test_min_ttl_of_empty(self):
        assert DNSMessage().min_answer_ttl() is None

    def test_rrtype_parse(self):
        assert RRType.parse("cname") is RRType.CNAME
        with pytest.raises(DNSError):
            RRType.parse("WKS")
