"""Public anycast DNS services."""

import pytest

from repro.core.addressing import prefix24
from repro.core.node import ProbeOrigin
from repro.core.rng import RandomStream
from repro.dns.message import RRType


@pytest.fixture()
def stream():
    return RandomStream(77, "public-dns-tests")


def _origin(world, city_name="Chicago"):
    from repro.geo.regions import city_named

    vantage = world.vantage
    return ProbeOrigin(
        source_ip=vantage.host.ip,
        asys=vantage.host.asys,
        location=city_named(city_name).location,
        access_rtt_ms=1.0,
    )


class TestAnycastRouting:
    def test_serves_from_nearby_cluster(self, world, stream):
        service = world.google_dns
        service.route_instability = 0.0
        try:
            origin = _origin(world, "Chicago")
            cluster = service.serving_cluster(origin, "dev", now=0.0)
            assert cluster.city.name == "Chicago"
        finally:
            service.route_instability = world.config.google_instability

    def test_instability_spreads_over_nearby_clusters(self, world, stream):
        service = world.google_dns
        origin = _origin(world, "Chicago")
        clusters = {
            service.serving_cluster(origin, "dev", now=t * service.wobble_epoch_s).index
            for t in range(80)
        }
        assert len(clusters) > 1

    def test_sk_queries_served_from_asia_pacific(self, world, stream):
        from repro.geo.regions import Country

        origin = _origin(world, "Chicago")
        origin = ProbeOrigin(
            source_ip=origin.source_ip,
            asys=origin.asys,
            location=world.operators["skt"].egress_points[0].location,
            access_rtt_ms=1.0,
        )
        service = world.google_dns
        cluster = service.serving_cluster(origin, "dev", now=0.0)
        assert cluster.city.country is Country.ASIA_PACIFIC


class TestResolution:
    def test_resolves_catalogue_domain(self, world, stream):
        origin = _origin(world)
        outcome = world.google_dns.resolve(
            origin, "www.google.com", RRType.A, now=0.0, stream=stream,
            device_key="dev",
        )
        assert outcome is not None
        assert outcome.result.addresses()
        assert outcome.total_ms > world.google_dns.peering_penalty_ms

    def test_external_ip_is_cluster_machine(self, world, stream):
        origin = _origin(world)
        outcome = world.google_dns.resolve(
            origin, "www.google.com", RRType.A, now=0.0, stream=stream,
            device_key="dev",
        )
        cluster = world.google_dns.clusters[outcome.cluster_index]
        assert prefix24(outcome.external_ip) == str(cluster.prefix).replace(
            "/24", "/24"
        )
        assert cluster.prefix.contains(outcome.external_ip)

    def test_machines_rotate_over_time(self, world, stream):
        origin = _origin(world)
        seen = set()
        for day in range(20):
            outcome = world.google_dns.resolve(
                origin, "www.google.com", RRType.A, now=day * 86400.0,
                stream=stream, device_key="dev",
            )
            seen.add(outcome.external_ip)
        assert len(seen) > 1


class TestPing:
    def test_ping_includes_peering_penalty(self, world, stream):
        origin = _origin(world)
        service = world.google_dns
        rtts = [
            service.ping(origin, now=0.0, stream=stream, device_key="dev")
            for _ in range(20)
        ]
        assert all(rtt is not None for rtt in rtts)
        assert min(rtts) > service.peering_penalty_ms

    def test_cluster_prefixes_are_24s(self, world):
        prefixes = world.google_dns.cluster_prefixes()
        assert len(prefixes) == 30
        assert all(prefix.endswith("/24") for prefix in prefixes)
