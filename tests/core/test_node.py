"""Hosts, ping policies and probe origins."""

from repro.core.asn import ASKind, AutonomousSystem
from repro.core.node import Host, PingPolicy, ProbeOrigin
from repro.geo.coordinates import GeoPoint

NYC = GeoPoint(40.7128, -74.0060)
LA = GeoPoint(34.0522, -118.2437)


class TestPingPolicy:
    def test_open(self):
        assert PingPolicy.OPEN.answers(same_operator=True)
        assert PingPolicy.OPEN.answers(same_operator=False)

    def test_internal_only(self):
        assert PingPolicy.INTERNAL_ONLY.answers(same_operator=True)
        assert not PingPolicy.INTERNAL_ONLY.answers(same_operator=False)

    def test_external_only(self):
        assert not PingPolicy.EXTERNAL_ONLY.answers(same_operator=True)
        assert PingPolicy.EXTERNAL_ONLY.answers(same_operator=False)

    def test_silent(self):
        assert not PingPolicy.SILENT.answers(same_operator=True)
        assert not PingPolicy.SILENT.answers(same_operator=False)


class TestProbeOrigin:
    def _origin(self, egress=None):
        system = AutonomousSystem(64501, "o", ASKind.UNIVERSITY)
        return ProbeOrigin(
            source_ip="198.18.0.1",
            asys=system,
            location=NYC,
            access_rtt_ms=1.0,
            egress=egress,
        )

    def test_egress_location_defaults_to_own(self):
        origin = self._origin()
        assert origin.egress_location == NYC

    def test_egress_location_follows_egress_host(self):
        system = AutonomousSystem(64502, "cell", ASKind.CELLULAR)
        from repro.core.addressing import Prefix

        system.add_prefix(Prefix.parse("198.19.0.0/24"))
        egress = Host(ip="198.19.0.1", name="egress", asys=system, location=LA)
        origin = self._origin(egress=egress)
        assert origin.egress_location == LA

    def test_host_str_is_informative(self):
        system = AutonomousSystem(64501, "Net", ASKind.CDN)
        from repro.core.addressing import Prefix

        system.add_prefix(Prefix.parse("198.18.0.0/24"))
        host = Host(ip="198.18.0.1", name="edge", asys=system, location=NYC)
        assert "edge" in str(host)
        assert "198.18.0.1" in str(host)
