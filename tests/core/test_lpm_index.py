"""The indexed ``asn_of`` against its executable specification.

``VirtualInternet.asn_of_linear`` is the original O(systems x prefixes)
scan, kept precisely so the hash-index fast path can be property-tested
against it: any randomized prefix population — nested, overlapping,
duplicated — must produce identical answers from both.
"""

import random

from repro.core.addressing import Prefix, int_to_ip
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.internet import VirtualInternet


def _system(asn: int) -> AutonomousSystem:
    return AutonomousSystem(
        asn=asn,
        name=f"as-{asn}",
        kind=ASKind.TRANSIT,
        firewall=FirewallPolicy(blocks_inbound=False),
    )


def _random_internet(rng: random.Random, systems: int) -> VirtualInternet:
    """Systems announcing random prefixes with deliberate nesting.

    Half the announcements are carved out of another system's space so
    longest-prefix match (not announcement order) decides ownership.
    """
    net = VirtualInternet()
    registered = []
    for index in range(systems):
        asys = _system(64500 + index)
        base = rng.randrange(1, 223)
        asys.add_prefix(Prefix.parse(f"{base}.{rng.randrange(256)}.0.0/16"))
        registered.append(asys)
        net.register_system(asys)
    for asys in registered:
        for _ in range(rng.randrange(1, 5)):
            parent = rng.choice(registered)
            parent_prefix = parent.prefixes[0]
            length = rng.choice([20, 24, 24, 28])
            offset = rng.randrange(parent_prefix.size)
            network = parent_prefix.network + offset
            network &= (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            asys.add_prefix(Prefix.parse(f"{int_to_ip(network)}/{length}"))
    return net


def _probe_addresses(net: VirtualInternet, rng: random.Random) -> list:
    """Prefix edges (network, broadcast, interior) plus random misses."""
    addresses = []
    for asys in net._systems.values():
        for prefix in asys.prefixes:
            addresses.append(int_to_ip(prefix.network))
            addresses.append(int_to_ip(prefix.network + prefix.size - 1))
            addresses.append(int_to_ip(prefix.network + rng.randrange(prefix.size)))
    addresses.extend(
        int_to_ip(rng.randrange(1 << 32)) for _ in range(200)
    )
    return addresses


class TestLpmIndexMatchesLinearScan:
    def test_randomized_populations(self):
        for trial in range(10):
            rng = random.Random(1000 + trial)
            net = _random_internet(rng, systems=rng.randrange(2, 30))
            for address in _probe_addresses(net, rng):
                assert net.asn_of(address) == net.asn_of_linear(address), address

    def test_nested_prefix_prefers_most_specific(self):
        net = VirtualInternet()
        coarse, fine, finer = _system(64601), _system(64602), _system(64603)
        coarse.add_prefix(Prefix.parse("10.0.0.0/8"))
        fine.add_prefix(Prefix.parse("10.1.0.0/16"))
        finer.add_prefix(Prefix.parse("10.1.2.0/24"))
        for asys in (coarse, fine, finer):
            net.register_system(asys)
        assert net.asn_of("10.9.9.9") == 64601
        assert net.asn_of("10.1.9.9") == 64602
        assert net.asn_of("10.1.2.9") == 64603
        assert net.asn_of("11.0.0.1") is None

    def test_duplicate_announcement_first_registered_wins(self):
        net = VirtualInternet()
        first, second = _system(64611), _system(64612)
        first.add_prefix(Prefix.parse("172.16.0.0/16"))
        second.add_prefix(Prefix.parse("172.16.0.0/16"))
        net.register_system(first)
        net.register_system(second)
        assert net.asn_of("172.16.5.5") == net.asn_of_linear("172.16.5.5") == 64611

    def test_index_rebuilds_after_late_announcement(self):
        """Prefixes added after the first lookup are still visible.

        Operator-CDN extensions claim prefixes well after world
        construction; the generation guard must catch that.
        """
        net = VirtualInternet()
        asys = _system(64621)
        asys.add_prefix(Prefix.parse("192.0.2.0/24"))
        net.register_system(asys)
        assert net.asn_of("198.51.100.1") is None  # index built here
        asys.add_prefix(Prefix.parse("198.51.100.0/24"))
        assert net.asn_of("198.51.100.1") == 64621
        late_system = _system(64622)
        late_system.add_prefix(Prefix.parse("203.0.113.0/24"))
        net.register_system(late_system)
        assert net.asn_of("203.0.113.7") == 64622
