"""Deterministic randomness: streams, registry, stable indices."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rng import (
    RandomStream,
    RngRegistry,
    derive_seed,
    spread_evenly,
    stable_fraction,
    stable_index,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_distinct_names(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRandomStream:
    def test_same_name_same_sequence(self):
        first = RandomStream(7, "x")
        second = RandomStream(7, "x")
        assert [first.random() for _ in range(5)] == [
            second.random() for _ in range(5)
        ]

    def test_different_names_diverge(self):
        first = RandomStream(7, "x")
        second = RandomStream(7, "y")
        assert [first.random() for _ in range(5)] != [
            second.random() for _ in range(5)
        ]

    def test_lognormal_median(self):
        stream = RandomStream(7, "lognormal")
        samples = sorted(stream.lognormal_ms(50.0, 0.3) for _ in range(4001))
        median = samples[len(samples) // 2]
        assert 45.0 < median < 55.0

    def test_lognormal_rejects_nonpositive(self):
        stream = RandomStream(7, "z")
        with pytest.raises(ValueError):
            stream.lognormal_ms(0.0, 0.3)

    def test_bounded_gauss_respects_bounds(self):
        stream = RandomStream(7, "bg")
        for _ in range(200):
            value = stream.bounded_gauss(0.0, 10.0, -1.0, 1.0)
            assert -1.0 <= value <= 1.0

    def test_weighted_choice_respects_weights(self):
        stream = RandomStream(7, "wc")
        picks = [
            stream.weighted_choice(["a", "b"], [0.99, 0.01]) for _ in range(500)
        ]
        assert picks.count("a") > 400

    def test_weighted_choice_length_mismatch(self):
        stream = RandomStream(7, "wc2")
        with pytest.raises(ValueError):
            stream.weighted_choice(["a"], [1.0, 2.0])

    def test_bernoulli_extremes(self):
        stream = RandomStream(7, "bern")
        assert not any(stream.bernoulli(0.0) for _ in range(50))
        assert all(stream.bernoulli(1.0) for _ in range(50))


class TestRngRegistry:
    def test_stream_identity(self):
        registry = RngRegistry(5)
        assert registry.stream("a", 1) is registry.stream("a", 1)

    def test_adding_streams_does_not_perturb_existing(self):
        registry = RngRegistry(5)
        first = registry.stream("alpha")
        head = [first.random() for _ in range(3)]
        registry.stream("beta").random()
        fresh = RngRegistry(5).stream("alpha")
        assert [fresh.random() for _ in range(3)] == head

    def test_fork_is_independent(self):
        registry = RngRegistry(5)
        forked = registry.fork("campaign")
        a = registry.stream("x").random()
        b = forked.stream("x").random()
        assert a != b

    def test_known_streams(self):
        registry = RngRegistry(5)
        registry.stream("one")
        registry.stream("two")
        assert list(registry.known_streams()) == ["one", "two"]


class TestStableFunctions:
    def test_stable_index_pure(self):
        assert stable_index(1, "d", 3, modulo=10) == stable_index(
            1, "d", 3, modulo=10
        )

    def test_stable_index_range(self):
        for part in range(100):
            assert 0 <= stable_index(9, part, modulo=7) < 7

    def test_stable_index_rejects_bad_modulo(self):
        with pytest.raises(ValueError):
            stable_index(1, "x", modulo=0)

    @given(st.integers(), st.text(max_size=20))
    def test_stable_fraction_in_unit_interval(self, seed, name):
        value = stable_fraction(seed, name)
        assert 0.0 <= value < 1.0

    def test_stable_index_roughly_uniform(self):
        counts = [0] * 4
        for item in range(2000):
            counts[stable_index(3, "u", item, modulo=4)] += 1
        assert min(counts) > 350


class TestSpreadEvenly:
    def test_exact_division(self):
        assert spread_evenly(9, 3) == [3, 3, 3]

    def test_remainder_goes_first(self):
        assert spread_evenly(10, 3) == [4, 3, 3]

    def test_more_buckets_than_total(self):
        assert spread_evenly(2, 4) == [1, 1, 0, 0]

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            spread_evenly(3, 0)

    @given(
        st.integers(min_value=0, max_value=10000),
        st.integers(min_value=1, max_value=64),
    )
    def test_sum_preserved(self, total, buckets):
        parts = spread_evenly(total, buckets)
        assert sum(parts) == total
        assert max(parts) - min(parts) <= 1
