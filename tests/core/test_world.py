"""World assembly: every substrate present and wired correctly."""

from repro.core.asn import ASKind
from repro.core.world import GOOGLE_DNS_IP, OPENDNS_IP, WHOAMI_ZONE, build_world
from repro.dns.message import RRType, make_query


class TestWorldStructure:
    def test_all_six_carriers(self, world):
        assert sorted(world.operators) == [
            "att", "lgu", "skt", "sprint", "tmobile", "verizon",
        ]

    def test_three_cdns(self, world):
        assert sorted(world.cdns) == ["continental", "globalcache", "usonly"]

    def test_google_has_thirty_clusters(self, world):
        assert len(world.google_dns.clusters) == 30

    def test_opendns_smaller_than_google(self, world):
        assert len(world.opendns.clusters) < len(world.google_dns.clusters)

    def test_public_services_by_kind(self, world):
        assert world.public_service("google") is world.google_dns
        assert world.public_service("opendns") is world.opendns
        assert world.google_dns.anycast_ip == GOOGLE_DNS_IP
        assert world.opendns.anycast_ip == OPENDNS_IP

    def test_egress_counts_match_sec52(self, world):
        expected = {"att": 11, "sprint": 45, "tmobile": 49, "verizon": 62}
        for key, count in expected.items():
            assert len(world.operators[key].egress_points) == count

    def test_verizon_split_ases(self, world):
        verizon = world.operators["verizon"]
        assert verizon.system.asn == 6167
        external_asns = {
            resolver.host.asys.asn for resolver in verizon.deployment.externals
        }
        assert external_asns == {22394}

    def test_sk_pools_share_prefixes(self, world):
        from repro.core.addressing import prefix24

        skt = world.operators["skt"]
        prefixes = {prefix24(ip) for ip in skt.deployment.external_ips()}
        assert len(prefixes) == 2
        # Client fronts live in the externals' space (same /24 layout).
        client_prefixes = {prefix24(ip) for ip in skt.deployment.client_ips()}
        assert client_prefixes <= prefixes

    def test_lgu_dense_pools(self, world):
        from repro.core.addressing import prefix24

        lgu = world.operators["lgu"]
        assert len(lgu.deployment.externals) == 90
        assert len({prefix24(ip) for ip in lgu.deployment.external_ips()}) == 2

    def test_att_forty_externals(self, world):
        assert len(world.operators["att"].deployment.externals) == 40


class TestWorldWiring:
    def test_locate_ip_flags_cellular(self, world):
        resolver_ip = world.operators["att"].deployment.external_ips()[0]
        located = world.locate_ip(resolver_ip)
        assert located is not None and located[1] is True
        google_ip = world.google_dns.clusters[0].hosts[0].ip
        located = world.locate_ip(google_ip)
        assert located is not None and located[1] is False
        assert world.locate_ip("203.0.113.77") is None

    def test_replica_owner(self, world):
        replica = world.cdns["usonly"].all_replicas()[0]
        assert world.replica_owner(replica.ip) is world.cdns["usonly"]
        assert world.replica_owner("203.0.113.1") is None

    def test_echo_authority_registered(self, world):
        authority = world.directory.authority_for(f"x.{WHOAMI_ZONE}")
        assert authority is world.echo_authority

    def test_domain_resolution_chain_reaches_cdn(self, world):
        authority = world.directory.authority_for("www.buzzfeed.com")
        response = authority.answer(
            make_query("www.buzzfeed.com"), "198.18.0.1", now=0.0
        )
        chain = response.cname_chain()
        assert chain and chain[0].endswith("usonly-sim.net")

    def test_every_registered_host_has_unique_ip(self, world):
        hosts = world.internet.hosts()
        assert len({host.ip for host in hosts}) == len(hosts)

    def test_cellular_systems_block_inbound(self, world):
        for operator in world.operators.values():
            assert operator.system.firewall.blocks_inbound
            assert operator.system.kind is ASKind.CELLULAR

    def test_deterministic_construction(self):
        first = build_world()
        second = build_world()
        assert sorted(h.ip for h in first.internet.hosts()) == sorted(
            h.ip for h in second.internet.hosts()
        )
