"""IPv4 addressing: parsing, prefixes, allocators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.addressing import (
    AddressPool,
    Prefix,
    PrefixAllocator,
    int_to_ip,
    ip_to_int,
    is_valid_ip,
    prefix24,
    same_prefix24,
)
from repro.core.errors import AddressError, AddressPoolExhausted


class TestIpConversion:
    def test_roundtrip_known(self):
        assert ip_to_int("8.8.8.8") == 0x08080808
        assert int_to_ip(0x08080808) == "8.8.8.8"

    def test_zero_and_max(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == (1 << 32) - 1
        assert int_to_ip(0) == "0.0.0.0"

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize(
        "bad",
        ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.04", "", "1..2.3"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            ip_to_int(bad)

    def test_is_valid_ip(self):
        assert is_valid_ip("10.0.0.1")
        assert not is_valid_ip("10.0.0.256")

    def test_int_to_ip_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            int_to_ip(-1)
        with pytest.raises(AddressError):
            int_to_ip(1 << 32)


class TestPrefix24:
    def test_prefix24_masks_low_octet(self):
        assert prefix24("192.168.13.77") == "192.168.13.0/24"

    def test_same_prefix24(self):
        assert same_prefix24("10.1.2.3", "10.1.2.250")
        assert not same_prefix24("10.1.2.3", "10.1.3.3")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_prefix24_is_idempotent(self, value):
        ip = int_to_ip(value)
        block = prefix24(ip)
        anchor = block.split("/")[0]
        assert prefix24(anchor) == block


class TestPrefix:
    def test_parse_and_str(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert str(prefix) == "10.0.0.0/8"
        assert prefix.size == 1 << 24

    def test_contains(self):
        prefix = Prefix.parse("172.16.0.0/12")
        assert prefix.contains("172.20.1.1")
        assert not prefix.contains("172.32.0.1")

    def test_rejects_host_bits(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.1/8")

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/33")
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0")

    def test_host_addressing(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.host(1) == "192.0.2.1"
        assert prefix.host(255) == "192.0.2.255"
        with pytest.raises(AddressError):
            prefix.host(256)

    def test_hosts_skips_network_and_broadcast(self):
        prefix = Prefix.parse("192.0.2.0/30")
        assert list(prefix.hosts()) == ["192.0.2.1", "192.0.2.2"]

    def test_subnets(self):
        prefix = Prefix.parse("10.0.0.0/22")
        subnets = list(prefix.subnets(24))
        assert len(subnets) == 4
        assert str(subnets[0]) == "10.0.0.0/24"
        assert str(subnets[3]) == "10.0.3.0/24"

    def test_subnets_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(16))

    @given(st.integers(min_value=0, max_value=255))
    def test_mask_covers_own_network(self, octet):
        prefix = Prefix.parse(f"{octet}.0.0.0/8")
        assert prefix.contains(f"{octet}.1.2.3")


class TestPrefixAllocator:
    def test_allocations_are_disjoint(self):
        allocator = PrefixAllocator.parse("10.0.0.0/16")
        first = allocator.allocate24()
        second = allocator.allocate24()
        assert first.network != second.network
        assert not first.contains(second.host(1))

    def test_mixed_lengths_align(self):
        allocator = PrefixAllocator.parse("10.0.0.0/8")
        allocator.allocate24()
        wide = allocator.allocate(16)
        assert wide.network % wide.size == 0

    def test_exhaustion(self):
        allocator = PrefixAllocator.parse("10.0.0.0/24")
        allocator.allocate24()
        with pytest.raises(AddressPoolExhausted):
            allocator.allocate24()

    def test_rejects_wider_than_parent(self):
        allocator = PrefixAllocator.parse("10.0.0.0/24")
        with pytest.raises(AddressError):
            allocator.allocate(16)

    def test_remaining_decreases(self):
        allocator = PrefixAllocator.parse("10.0.0.0/22")
        before = allocator.remaining
        allocator.allocate24()
        assert allocator.remaining == before - 256


class TestAddressPool:
    def test_lease_and_release(self):
        pool = AddressPool()
        pool.add_prefix(Prefix.parse("192.0.2.0/29"))
        first = pool.lease()
        assert first in pool
        pool.release(first)
        # Address becomes available again eventually.
        leased = {pool.lease() for _ in range(5)}
        assert len(leased) == 5

    def test_exhaustion(self):
        pool = AddressPool()
        pool.add_prefix(Prefix.parse("192.0.2.0/30"))
        pool.lease()
        pool.lease()
        with pytest.raises(AddressPoolExhausted):
            pool.lease()

    def test_lease_many(self):
        pool = AddressPool()
        pool.add_prefix(Prefix.parse("192.0.2.0/28"))
        addresses = pool.lease_many(10)
        assert len(set(addresses)) == 10
