"""VirtualInternet: registration, timing, firewalls, traceroute."""

import pytest

from repro.core.addressing import Prefix
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.errors import TopologyError
from repro.core.internet import VirtualInternet
from repro.core.node import ROLE_EGRESS, Host, PathHop, PingPolicy, ProbeOrigin
from repro.core.rng import RandomStream
from repro.geo.coordinates import GeoPoint

NYC = GeoPoint(40.7128, -74.0060)
LA = GeoPoint(34.0522, -118.2437)
CHI = GeoPoint(41.8781, -87.6298)


def _system(asn, blocks=False, operator_key=None, prefix="198.18.0.0/24"):
    system = AutonomousSystem(
        asn=asn,
        name=f"AS{asn}",
        kind=ASKind.CELLULAR if blocks else ASKind.TRANSIT,
        firewall=FirewallPolicy(blocks_inbound=blocks, tunneled_interior=blocks),
        operator_key=operator_key,
    )
    system.add_prefix(Prefix.parse(prefix))
    return system


@pytest.fixture()
def net():
    return VirtualInternet()


@pytest.fixture()
def stream():
    return RandomStream(42, "internet-tests")


def _origin(system, location=NYC, ip="198.18.0.200", egress=None):
    return ProbeOrigin(
        source_ip=ip,
        asys=system,
        location=location,
        access_rtt_ms=1.0,
        egress=egress,
        origin_id="test",
    )


class TestRegistration:
    def test_register_host_requires_system(self, net):
        system = _system(64501)
        host = Host(ip="198.18.0.1", name="h", asys=system, location=NYC)
        with pytest.raises(TopologyError):
            net.register_host(host)

    def test_register_host_requires_owned_prefix(self, net):
        system = _system(64501)
        net.register_system(system)
        outsider = Host(ip="203.0.113.1", name="h", asys=system, location=NYC)
        with pytest.raises(TopologyError):
            net.register_host(outsider)

    def test_duplicate_ip_rejected(self, net):
        system = _system(64501)
        net.register_system(system)
        host = Host(ip="198.18.0.1", name="h", asys=system, location=NYC)
        net.register_host(host)
        clone = Host(ip="198.18.0.1", name="h2", asys=system, location=LA)
        with pytest.raises(TopologyError):
            net.register_host(clone)

    def test_duplicate_asn_idempotent_for_same_object(self, net):
        system = _system(64501)
        net.register_system(system)
        assert net.register_system(system) is system
        with pytest.raises(TopologyError):
            net.register_system(_system(64501, prefix="198.19.0.0/24"))

    def test_asn_of_longest_prefix_match(self, net):
        coarse = _system(64501, prefix="198.18.0.0/16")
        fine = _system(64502, prefix="198.18.5.0/24")
        net.register_system(coarse)
        net.register_system(fine)
        assert net.asn_of("198.18.5.9") == 64502
        assert net.asn_of("198.18.9.9") == 64501
        assert net.asn_of("203.0.113.1") is None


class TestTiming:
    def test_rtt_grows_with_distance(self, net, stream):
        system = _system(64501, prefix="198.18.0.0/16")
        net.register_system(system)
        near = Host(ip="198.18.0.1", name="near", asys=system, location=NYC)
        far = Host(ip="198.18.0.2", name="far", asys=system, location=LA)
        net.register_host(near)
        net.register_host(far)
        other = _system(64502, prefix="198.19.0.0/24")
        net.register_system(other)
        origin = _origin(other, location=NYC, ip="198.19.0.9")
        near_rtt = net.measure_rtt(origin, near.ip, stream)
        far_rtt = net.measure_rtt(origin, far.ip, stream)
        assert near_rtt is not None and far_rtt is not None
        assert far_rtt > near_rtt
        # NYC <-> LA is a ~40 ms RTT at 1.6x inflation.
        assert 25.0 < far_rtt < 90.0

    def test_unknown_destination_is_unreachable(self, net, stream):
        system = _system(64501)
        net.register_system(system)
        origin = _origin(system)
        assert net.measure_rtt(origin, "203.0.113.7", stream) is None
        assert net.flow_rtt(origin, "203.0.113.7", stream) is None

    def test_flow_ignores_ping_silence(self, net, stream):
        system = _system(64501)
        net.register_system(system)
        silent = Host(
            ip="198.18.0.1",
            name="silent",
            asys=system,
            location=NYC,
            responds_to_ping=False,
        )
        net.register_host(silent)
        origin = _origin(system, ip="198.18.0.99")
        assert net.measure_rtt(origin, silent.ip, stream) is None
        assert net.flow_rtt(origin, silent.ip, stream) is not None

    def test_interior_penalty_added(self, net, stream):
        system = _system(64501, prefix="198.18.0.0/16")
        net.register_system(system)
        plain = Host(ip="198.18.0.1", name="plain", asys=system, location=NYC)
        deep = Host(
            ip="198.18.0.2",
            name="deep",
            asys=system,
            location=NYC,
            interior_penalty_ms=50.0,
        )
        net.register_host(plain)
        net.register_host(deep)
        other = _system(64502, prefix="198.19.0.0/24")
        net.register_system(other)
        origin = _origin(other, ip="198.19.0.9")
        gap = net.measure_rtt(origin, deep.ip, stream) - net.measure_rtt(
            origin, plain.ip, stream
        )
        assert gap > 30.0


class TestFirewalls:
    def _blocked_world(self, net):
        cellular = _system(64501, blocks=True, operator_key="cell")
        outside = _system(64502, prefix="198.19.0.0/24")
        net.register_system(cellular)
        net.register_system(outside)
        inside_host = Host(
            ip="198.18.0.1", name="resolver", asys=cellular, location=NYC
        )
        net.register_host(inside_host)
        return cellular, outside, inside_host

    def test_inbound_blocked(self, net, stream):
        _, outside, inside_host = self._blocked_world(net)
        origin = _origin(outside, ip="198.19.0.9")
        assert net.measure_rtt(origin, inside_host.ip, stream) is None
        assert net.flow_rtt(origin, inside_host.ip, stream) is None

    def test_same_as_allowed(self, net, stream):
        cellular, _, inside_host = self._blocked_world(net)
        origin = _origin(cellular, ip="198.18.0.200")
        assert net.measure_rtt(origin, inside_host.ip, stream) is not None

    def test_externally_open_exception(self, net, stream):
        cellular, outside, _ = self._blocked_world(net)
        open_host = Host(
            ip="198.18.0.2",
            name="open-resolver",
            asys=cellular,
            location=NYC,
            externally_open=True,
        )
        net.register_host(open_host)
        origin = _origin(outside, ip="198.19.0.9")
        assert net.measure_rtt(origin, open_host.ip, stream) is not None

    def test_sibling_operator_as_trusted(self, net, stream):
        client_tier = _system(6167, blocks=True, operator_key="vz")
        resolver_tier = _system(
            22394, blocks=True, operator_key="vz", prefix="198.19.0.0/24"
        )
        net.register_system(client_tier)
        net.register_system(resolver_tier)
        resolver = Host(
            ip="198.19.0.1", name="ext", asys=resolver_tier, location=NYC
        )
        net.register_host(resolver)
        origin = _origin(client_tier, ip="198.18.0.200")
        assert net.flow_rtt(origin, resolver.ip, stream) is not None


class TestPingPolicies:
    def _policy_host(self, net, policy):
        cellular = _system(64501, blocks=True, operator_key="cell")
        outside = _system(64502, prefix="198.19.0.0/24")
        net.register_system(cellular)
        net.register_system(outside)
        host = Host(
            ip="198.18.0.1",
            name="h",
            asys=cellular,
            location=NYC,
            ping_policy=policy,
            externally_open=True,
        )
        net.register_host(host)
        inside_origin = _origin(cellular, ip="198.18.0.77")
        outside_origin = _origin(outside, ip="198.19.0.9")
        return host, inside_origin, outside_origin

    def test_internal_only(self, net, stream):
        host, inside, outside = self._policy_host(net, PingPolicy.INTERNAL_ONLY)
        assert net.measure_rtt(inside, host.ip, stream) is not None
        assert net.measure_rtt(outside, host.ip, stream) is None

    def test_external_only(self, net, stream):
        host, inside, outside = self._policy_host(net, PingPolicy.EXTERNAL_ONLY)
        assert net.measure_rtt(inside, host.ip, stream) is None
        assert net.measure_rtt(outside, host.ip, stream) is not None

    def test_silent(self, net, stream):
        host, inside, outside = self._policy_host(net, PingPolicy.SILENT)
        assert net.measure_rtt(inside, host.ip, stream) is None
        assert net.measure_rtt(outside, host.ip, stream) is None
        # Flows still pass for the interior origin (DNS keeps working).
        assert net.flow_rtt(inside, host.ip, stream) is not None


class TestTraceroute:
    def _world_with_transit(self, net):
        cellular = _system(64501, blocks=True, operator_key="cell")
        transit = _system(64510, prefix="198.19.0.0/24")
        content = _system(64520, prefix="198.20.0.0/24")
        for system in (cellular, transit, content):
            net.register_system(system)
        egress = Host(
            ip="198.18.0.1",
            name="egress-cell-0",
            asys=cellular,
            location=CHI,
            role=ROLE_EGRESS,
        )
        net.register_host(egress)
        router = Host(ip="198.19.0.1", name="transit.chi", asys=transit, location=CHI)
        net.register_transit_router(router)
        server = Host(ip="198.20.0.1", name="web", asys=content, location=LA)
        net.register_host(server)
        return cellular, egress, router, server

    def test_device_traceroute_shows_egress_then_transit(self, net, stream):
        cellular, egress, router, server = self._world_with_transit(net)
        interior = [PathHop(host=None, ip=None, responds=False, cumulative_ms=0.0)] * 3
        origin = ProbeOrigin(
            source_ip="198.18.0.250",
            asys=cellular,
            location=CHI,
            access_rtt_ms=30.0,
            egress=egress,
            interior_hops=interior,
            origin_id="device",
        )
        result = net.traceroute(origin, server.ip, stream)
        assert result.reached
        ips = [hop.ip for hop in result.hops]
        # Interior hops are silent, then the egress answers.
        assert ips[:3] == [None, None, None]
        assert ips[3] == egress.ip
        assert router.ip in ips
        assert ips[-1] == server.ip

    def test_inbound_traceroute_stops_at_ingress(self, net, stream):
        cellular, egress, router, server = self._world_with_transit(net)
        resolver = Host(
            ip="198.18.0.2",
            name="ldns-ext",
            asys=cellular,
            location=CHI,
            externally_open=True,
        )
        net.register_host(resolver)
        outside = _system(64530, prefix="198.21.0.0/24")
        net.register_system(outside)
        origin = _origin(outside, location=LA, ip="198.21.0.5")
        result = net.traceroute(origin, resolver.ip, stream)
        assert not result.reached
        assert egress.ip in result.responding_ips()
        assert result.hops[-1].ip is None

    def test_traceroute_to_unknown_trails_stars(self, net, stream):
        cellular, egress, _, _ = self._world_with_transit(net)
        origin = _origin(cellular, location=CHI, egress=egress)
        result = net.traceroute(origin, "203.0.113.99", stream)
        assert not result.reached
        assert all(hop.ip is None for hop in result.hops[-3:])

    def test_cumulative_rtts_monotone_over_transit(self, net, stream):
        cellular, egress, router, server = self._world_with_transit(net)
        origin = _origin(cellular, location=CHI, egress=egress, ip="198.18.0.77")
        result = net.traceroute(origin, server.ip, stream)
        rtts = [hop.rtt_ms for hop in result.hops if hop.rtt_ms is not None]
        assert rtts == sorted(rtts)
