"""Autonomous systems and firewall policies."""

from repro.core.addressing import Prefix
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy


class TestFirewallPolicy:
    def test_open_admits_everyone(self):
        policy = FirewallPolicy(blocks_inbound=False)
        assert policy.admits(1, 2, host_is_open=False)

    def test_blocking_drops_outsiders(self):
        policy = FirewallPolicy(blocks_inbound=True)
        assert not policy.admits(1, 2, host_is_open=False)

    def test_blocking_admits_same_as(self):
        policy = FirewallPolicy(blocks_inbound=True)
        assert policy.admits(2, 2, host_is_open=False)

    def test_blocking_admits_open_host(self):
        policy = FirewallPolicy(blocks_inbound=True)
        assert policy.admits(1, 2, host_is_open=True)


class TestAutonomousSystem:
    def _system(self):
        system = AutonomousSystem(asn=64501, name="Test", kind=ASKind.TRANSIT)
        system.add_prefix(Prefix.parse("198.18.0.0/24"))
        return system

    def test_originates(self):
        system = self._system()
        assert system.originates("198.18.0.200")
        assert not system.originates("198.19.0.1")

    def test_multiple_prefixes(self):
        system = self._system()
        system.add_prefix(Prefix.parse("198.19.0.0/24"))
        assert system.originates("198.19.0.1")

    def test_is_cellular(self):
        assert AutonomousSystem(1, "c", ASKind.CELLULAR).is_cellular
        assert not self._system().is_cellular

    def test_equality_by_asn(self):
        first = AutonomousSystem(64501, "a", ASKind.TRANSIT)
        second = AutonomousSystem(64501, "b", ASKind.CDN)
        assert first == second
        assert hash(first) == hash(second)

    def test_str(self):
        assert str(self._system()) == "AS64501 Test"
