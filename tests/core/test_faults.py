"""Declarative fault scenarios: schema, windows, runtime compilation."""

import json
import pickle

import pytest

from repro.cellnet.radio import RadioTechnology
from repro.core.faults import (
    BASELINE,
    BUNDLED_SCENARIOS,
    DAY_S,
    DegradedEpoch,
    EgressFailover,
    FaultScenario,
    LossRule,
    ProbePolicy,
    ResolverOutage,
    Window,
    load_scenario,
)
from repro.core.transport import FaultRuntime


class TestWindow:
    def test_half_open(self):
        window = Window(10.0, 20.0)
        assert window.contains(10.0)
        assert window.contains(19.999)
        assert not window.contains(20.0)
        assert not window.contains(9.999)

    def test_from_value_forms(self):
        assert Window.from_value([1, 2]) == Window(1.0, 2.0)
        assert Window.from_value((1, 2)) == Window(1.0, 2.0)
        assert Window.from_value({"start_s": 1, "end_s": 2}) == Window(1.0, 2.0)
        window = Window(3.0, 4.0)
        assert Window.from_value(window) is window


class TestLossRule:
    def test_carrier_and_probe_scoping(self):
        rule = LossRule(rate=0.5, carrier="att", probes=("ping",))
        assert rule.applies("att", "ping", 0.0)
        assert not rule.applies("tmobile", "ping", 0.0)
        assert not rule.applies("att", "dns", 0.0)

    def test_wildcard_carrier_and_window(self):
        rule = LossRule(rate=0.5, window=Window(0.0, 10.0))
        assert rule.applies("anyone", "dns", 5.0)
        assert not rule.applies("anyone", "dns", 10.0)


class TestScenarioSchema:
    def test_baseline_is_fault_free(self):
        assert not BASELINE.has_faults
        assert BASELINE.policy == ProbePolicy()

    def test_bundled_names(self):
        assert set(BUNDLED_SCENARIOS) == {
            "baseline", "resolver-outage", "lossy-2g", "egress-failover",
        }
        for name, scenario in BUNDLED_SCENARIOS.items():
            assert scenario.name == name
        assert BUNDLED_SCENARIOS["resolver-outage"].has_faults
        assert BUNDLED_SCENARIOS["lossy-2g"].has_faults
        assert BUNDLED_SCENARIOS["egress-failover"].has_faults

    def test_from_dict_full_schema(self):
        scenario = FaultScenario.from_dict({
            "name": "kitchen-sink",
            "description": "everything at once",
            "policy": {"dns_retries": 5, "backoff_s": 0.5},
            "loss": [
                {"rate": 0.1, "carrier": "att", "probes": ["ping"],
                 "window": [0, 86400]},
                {"rate": 0.05},
            ],
            "resolver_outages": [
                {"resolver_kind": "local", "carrier": "att",
                 "window": [86400, 172800]},
            ],
            "degraded_epochs": [
                {"carrier": "tmobile", "technology": "EDGE",
                 "window": [0, 43200]},
            ],
            "egress_failovers": [
                {"carrier": "verizon", "egress_index": 0,
                 "window": [0, 86400]},
            ],
        })
        assert scenario.name == "kitchen-sink"
        assert scenario.policy.dns_retries == 5
        assert scenario.policy.backoff_s == 0.5
        assert scenario.loss_rules[0] == LossRule(
            rate=0.1, carrier="att", probes=("ping",), window=Window(0, DAY_S)
        )
        assert scenario.loss_rules[1].window is None
        assert scenario.resolver_outages[0].resolver_kind == "local"
        assert scenario.degraded_epochs[0].technology == "EDGE"
        assert scenario.egress_failovers[0].egress_index == 0
        assert scenario.has_faults

    def test_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({
            "name": "from-disk",
            "loss": [{"rate": 0.2}],
        }))
        scenario = FaultScenario.from_file(str(path))
        assert scenario.name == "from-disk"
        assert scenario.loss_rules[0].rate == 0.2

    def test_scenarios_pickle(self):
        # Parallel campaign shards rebuild worlds from a pickled
        # WorldConfig; every bundled scenario must survive the trip.
        for scenario in BUNDLED_SCENARIOS.values():
            assert pickle.loads(pickle.dumps(scenario)) == scenario


class TestLoadScenario:
    def test_instance_passthrough(self):
        assert load_scenario(BASELINE) is BASELINE

    def test_bundled_name(self):
        assert load_scenario("lossy-2g") is BUNDLED_SCENARIOS["lossy-2g"]

    def test_file_path(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(json.dumps({"name": "custom"}))
        assert load_scenario(str(path)).name == "custom"

    def test_unknown_reference(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            load_scenario("no-such-scenario")


class TestFaultRuntime:
    @pytest.fixture()
    def runtime(self):
        return FaultRuntime(FaultScenario(
            name="runtime",
            loss_rules=(
                LossRule(rate=1.0, carrier="att", window=Window(DAY_S, 2 * DAY_S)),
            ),
            resolver_outages=(
                ResolverOutage(
                    resolver_kind="local", window=Window(2 * DAY_S, 3 * DAY_S)
                ),
            ),
            degraded_epochs=(
                DegradedEpoch(
                    carrier="tmobile",
                    technology="EDGE",
                    window=Window(0.0, DAY_S),
                ),
            ),
            egress_failovers=(
                EgressFailover(
                    carrier="verizon",
                    egress_index=0,
                    window=Window(DAY_S, 4 * DAY_S),
                ),
            ),
        ))

    def test_drop_only_inside_the_window(self, runtime, stream):
        assert not runtime.drop("att", "ping", 0.0, stream)
        assert runtime.drop("att", "ping", 1.5 * DAY_S, stream)  # rate 1.0
        assert not runtime.drop("att", "ping", 2.5 * DAY_S, stream)

    def test_outage_wildcard_carrier(self, runtime):
        assert runtime.outage_active("local", "att", 2.5 * DAY_S)
        assert runtime.outage_active("local", "sprint", 2.5 * DAY_S)
        assert not runtime.outage_active("google", "att", 2.5 * DAY_S)
        assert not runtime.outage_active("local", "att", 3.5 * DAY_S)

    def test_rat_override(self, runtime):
        override = runtime.rat_override("tmobile", 0.5 * DAY_S)
        assert override is RadioTechnology("EDGE")
        # Memoised: the same enum member comes back.
        assert runtime.rat_override("tmobile", 0.6 * DAY_S) is override
        assert runtime.rat_override("tmobile", 1.5 * DAY_S) is None
        assert runtime.rat_override("att", 0.5 * DAY_S) is None

    def test_failed_egress(self, runtime):
        assert runtime.failed_egress("verizon", 2 * DAY_S) == 0
        assert runtime.failed_egress("verizon", 5 * DAY_S) is None
        assert runtime.failed_egress("att", 2 * DAY_S) is None

    def test_phase_changes_at_each_boundary(self, runtime):
        phases = [
            runtime.phase(now)
            for now in (0.5 * DAY_S, 1.5 * DAY_S, 2.5 * DAY_S, 3.5 * DAY_S, 5 * DAY_S)
        ]
        assert phases == sorted(phases)
        assert len(set(phases)) == len(phases)

    def test_span_brackets_now(self, runtime):
        lower, upper = runtime.span(1.5 * DAY_S)
        assert lower == DAY_S and upper == 2 * DAY_S
        lower, upper = runtime.span(100 * DAY_S)
        assert upper == float("inf")
        lower, upper = runtime.span(-1.0)
        assert lower == float("-inf")
