"""Byte-identity property tests for the vectorized draw-pool layer.

The contract under test: a :class:`RandomStream` served from block-refilled
uniform pools produces *bit-identical* values, in the same order, as the
scalar ``random.Random`` implementation — for every distribution, across
pool-refill boundaries, and under arbitrary interleavings of pooled calls,
block calls, and realigning (``getrandbits``-family) calls.

The scalar side of every comparison is a second stream with the same seed
driven purely through the ``*_reference`` oracles, which delegate straight
to ``random.Random``.  Tiny pool blocks (2–5) force refills and
pair-spanning mid-sequence so the boundary logic is exercised constantly.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import POOL_BLOCK, RandomStream, RngRegistry, derive_seed

SEED = 20140414  # IMC'14 submission era; any constant works.


def pooled_and_reference(seed=SEED, name="pair", pool_block=3):
    """Two same-seed streams: one pooled (tiny block), one scalar oracle."""
    pooled = RandomStream(seed, name, pool_block=pool_block)
    reference = RandomStream(seed, name)
    return pooled, reference


# -- per-distribution identity --------------------------------------------


@pytest.mark.parametrize("block", [2, 3, 7, POOL_BLOCK])
def test_random_identity_across_refills(block):
    pooled, reference = pooled_and_reference(pool_block=block)
    for _ in range(4 * block + 3):
        assert pooled.random() == reference.random_reference()


def test_uniform_identity():
    pooled, reference = pooled_and_reference()
    for index in range(50):
        low, high = -5.0 + index, 3.0 * index + 0.25
        assert pooled.uniform(low, high) == reference.uniform_reference(low, high)


def test_gauss_identity_including_pending_slot():
    # Odd draw counts leave a pending sin-deviate; 101 draws crosses many
    # pool boundaries with block=3 and ends mid-pair.
    pooled, reference = pooled_and_reference()
    for _ in range(101):
        assert pooled.gauss(3.5, 2.25) == reference.gauss_reference(3.5, 2.25)


def test_std_gauss_is_gauss_0_1():
    pooled, reference = pooled_and_reference()
    for _ in range(17):
        assert pooled.std_gauss() == reference.gauss_reference(0.0, 1.0)


def test_expovariate_identity():
    pooled, reference = pooled_and_reference()
    for _ in range(20):
        assert pooled.expovariate(0.37) == reference.expovariate_reference(0.37)


def test_lognormal_identity():
    pooled, reference = pooled_and_reference()
    for _ in range(20):
        assert pooled.lognormal_ms(12.0, 0.4) == reference.lognormal_ms_reference(
            12.0, 0.4
        )
        assert pooled.lognormal_from_log(
            math.log(12.0), 0.4
        ) == reference.lognormal_from_log_reference(math.log(12.0), 0.4)


def test_bounded_gauss_and_bernoulli_identity():
    pooled, reference = pooled_and_reference()
    for _ in range(40):
        assert pooled.bounded_gauss(10.0, 5.0, 2.0, 18.0) == (
            reference.bounded_gauss_reference(10.0, 5.0, 2.0, 18.0)
        )
        assert pooled.bernoulli(0.3) == reference.bernoulli_reference(0.3)


def test_weighted_choice_identity_and_memo():
    pooled, reference = pooled_and_reference()
    options = ["lte", "hspa", "umts", "edge"]
    weights = [5.0, 2.0, 1.5, 0.5]
    for _ in range(60):
        assert pooled.weighted_choice(options, weights) == (
            reference.weighted_choice_reference(options, weights)
        )
    # One memo entry despite 60 calls with a fresh list each call.
    assert len(pooled._cum_memo) == 1
    pooled.weighted_choice(options, list(weights))
    assert len(pooled._cum_memo) == 1


def test_weighted_choice_error_parity():
    pooled, reference = pooled_and_reference()
    with pytest.raises(ValueError):
        pooled.weighted_choice(["a", "b"], [1.0])
    with pytest.raises(ValueError):
        pooled.weighted_choice(["a", "b"], [0.0, 0.0])
    with pytest.raises(ValueError):
        reference.weighted_choice_reference(["a", "b"], [0.0, 0.0])
    with pytest.raises(ValueError):
        pooled.weighted_choice(["a", "b"], [1.0, math.inf])


# -- block draws -----------------------------------------------------------


@pytest.mark.parametrize("sizes", [(1,), (2,), (5, 3), (1, 4, 1, 6), (0, 3)])
def test_gauss_block_matches_scalar_sequence(sizes):
    pooled, reference = pooled_and_reference()
    for n in sizes:
        block = pooled.gauss_block(n)
        assert len(block) == n
        for z in block:
            assert z == reference.gauss_reference(0.0, 1.0)


def test_gauss_block_interleaved_with_singles():
    pooled, reference = pooled_and_reference()
    assert pooled.gauss(0.0, 1.0) == reference.gauss_reference(0.0, 1.0)
    # Pending deviate from the single must lead the block.
    for z in pooled.gauss_block(5):
        assert z == reference.gauss_reference(0.0, 1.0)
    assert pooled.gauss(2.0, 0.5) == reference.gauss_reference(2.0, 0.5)


def test_uniform_block_matches_scalar_sequence():
    pooled, reference = pooled_and_reference()
    for n in (1, 4, 9):
        block = pooled.uniform_block(n)
        assert len(block) == n
        for u in block:
            assert u == reference.random_reference()


def test_prefill_changes_nothing_but_batching():
    plain = RandomStream(SEED, "pf", pool_block=4)
    hinted = RandomStream(SEED, "pf", pool_block=4)
    hinted.prefill(40)
    a = [plain.random() for _ in range(45)]
    b = [hinted.random() for _ in range(45)]
    assert a == b
    assert hinted.pool_refills < plain.pool_refills


# -- realignment (getrandbits family) --------------------------------------


def test_realign_after_pooled_draws_matches_scalar():
    pooled, reference = pooled_and_reference(pool_block=5)
    for _ in range(3):  # partially consume a pool
        assert pooled.random() == reference.random_reference()
    assert pooled.randint(0, 10**9) == reference._rng.randint(0, 10**9)
    assert pooled.choice("abcdef") == reference._rng.choice("abcdef")
    items_a, items_b = list(range(20)), list(range(20))
    pooled.shuffle(items_a)
    reference._rng.shuffle(items_b)
    assert items_a == items_b
    assert pooled.sample(range(50), 7) == reference._rng.sample(range(50), 7)
    # ...and pooled draws resume in lockstep afterwards.
    for _ in range(11):
        assert pooled.gauss(1.0, 2.0) == reference.gauss_reference(1.0, 2.0)


def test_realign_preserves_pending_gauss():
    # Scalar gauss_next survives randint; the pool's pending slot must too.
    pooled, reference = pooled_and_reference()
    assert pooled.gauss(0.0, 1.0) == reference.gauss_reference(0.0, 1.0)
    assert pooled.randint(0, 99) == reference._rng.randint(0, 99)
    assert pooled.gauss(0.0, 1.0) == reference.gauss_reference(0.0, 1.0)


# -- hypothesis: arbitrary interleavings -----------------------------------

_OPS = st.sampled_from(
    [
        "random",
        "uniform",
        "gauss",
        "std_gauss",
        "expovariate",
        "lognormal_ms",
        "lognormal_from_log",
        "bounded_gauss",
        "bernoulli",
        "weighted",
        "randint",
        "choice",
        "gauss_block",
        "uniform_block",
        "prefill",
    ]
)


def _apply(op: str, pooled: RandomStream, reference: RandomStream):
    """Run one op on both streams; return the two results for comparison."""
    if op == "random":
        return pooled.random(), reference.random_reference()
    if op == "uniform":
        return pooled.uniform(-2.0, 9.5), reference.uniform_reference(-2.0, 9.5)
    if op == "gauss":
        return pooled.gauss(4.0, 1.5), reference.gauss_reference(4.0, 1.5)
    if op == "std_gauss":
        return pooled.std_gauss(), reference.gauss_reference(0.0, 1.0)
    if op == "expovariate":
        return pooled.expovariate(2.5), reference.expovariate_reference(2.5)
    if op == "lognormal_ms":
        return (
            pooled.lognormal_ms(30.0, 0.25),
            reference.lognormal_ms_reference(30.0, 0.25),
        )
    if op == "lognormal_from_log":
        return (
            pooled.lognormal_from_log(2.3, 0.4),
            reference.lognormal_from_log_reference(2.3, 0.4),
        )
    if op == "bounded_gauss":
        return (
            pooled.bounded_gauss(5.0, 3.0, 0.0, 9.0),
            reference.bounded_gauss_reference(5.0, 3.0, 0.0, 9.0),
        )
    if op == "bernoulli":
        return pooled.bernoulli(0.4), reference.bernoulli_reference(0.4)
    if op == "weighted":
        opts, w = ("a", "b", "c"), (1.0, 2.0, 3.0)
        return (
            pooled.weighted_choice(opts, w),
            reference.weighted_choice_reference(opts, w),
        )
    if op == "randint":
        reference._realign()
        return pooled.randint(0, 1 << 30), reference._rng.randint(0, 1 << 30)
    if op == "choice":
        reference._realign()
        return pooled.choice("xyzw"), reference._rng.choice("xyzw")
    if op == "gauss_block":
        return (
            tuple(pooled.gauss_block(3)),
            tuple(reference.gauss_reference(0.0, 1.0) for _ in range(3)),
        )
    if op == "uniform_block":
        return (
            tuple(pooled.uniform_block(4)),
            tuple(reference.random_reference() for _ in range(4)),
        )
    if op == "prefill":
        pooled.prefill(13)
        return None, None
    raise AssertionError(op)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(_OPS, min_size=1, max_size=60),
    block=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_interleaved_ops_are_byte_identical(ops, block, seed):
    pooled = RandomStream(seed, "hyp", pool_block=block)
    reference = RandomStream(seed, "hyp")
    for op in ops:
        got, want = _apply(op, pooled, reference)
        assert got == want, op


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(_OPS, min_size=1, max_size=40),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_pooled_stream_matches_pure_python_random(ops, seed):
    """Cross-check the oracle itself: a reference-driven stream tracks a
    bare ``random.Random`` with the derived seed (no wrapper drift)."""
    reference = RandomStream(seed, "bare")
    bare = random.Random(derive_seed(seed, "bare"))
    for op in ops:
        if op in ("random", "bernoulli", "uniform_block"):
            assert reference.random_reference() == bare.random()
        elif op in ("gauss", "std_gauss", "gauss_block", "bounded_gauss"):
            assert reference.gauss_reference(0.0, 1.0) == bare.gauss(0.0, 1.0)
        elif op == "expovariate":
            assert reference.expovariate_reference(1.7) == bare.expovariate(1.7)
        elif op == "weighted":
            assert reference.weighted_choice_reference(
                ("a", "b"), (1.0, 3.0)
            ) == bare.choices(("a", "b"), weights=(1.0, 3.0), k=1)[0]
        elif op == "randint":
            assert reference._rng.randint(0, 999) == bare.randint(0, 999)


# -- pooled sampling under fault scenarios ---------------------------------


def test_pooled_sampling_composes_with_transport_retries():
    """A lossy campaign rides the pools too: retries interleave extra
    gate/origin draws mid-experiment, and the run must stay
    deterministic (same seed → same bytes) with the pools engaged."""
    from repro import CellularDNSStudy, StudyConfig
    from repro.core.faults import load_scenario
    from repro.core.world import WorldConfig

    def build():
        world = WorldConfig(seed=2014)
        world.scenario = load_scenario("lossy-2g")
        return CellularDNSStudy(
            StudyConfig(
                seed=2014,
                device_scale=0.05,
                duration_days=2.0,
                interval_hours=24.0,
                world=world,
            )
        )

    first = build()
    hash_one = first.dataset.content_hash()
    counters = first.world.transport.counters
    assert counters.retries > 0  # the scenario actually exercised retries
    stats = first.world.rng.pool_stats()
    assert stats["pool_refills"] > 0
    assert stats["pool_hits"] > 0
    assert build().dataset.content_hash() == hash_one


# -- counters --------------------------------------------------------------


def test_pool_counters_and_registry_stats():
    registry = RngRegistry(SEED)
    stream = registry.stream("probe", "d1")
    assert stream.pool_refills == 0
    stream.gauss_block(10)
    assert stream.pool_refills == 1
    assert stream.pool_generated == POOL_BLOCK
    assert stream.pool_hits == 10
    stream.randint(0, 5)  # realign discards the unconsumed tail
    assert stream.pool_realignments == 1
    assert stream.pool_generated == 10  # only consumed uniforms remain counted
    assert stream.pool_hits == 10
    stats = registry.pool_stats()
    assert stats["streams"] == 1
    assert stats["pool_refills"] == 1
    assert stats["pool_realignments"] == 1
    assert stats["pool_hits"] == 10
