"""Transit backbone and the university vantage."""

from repro.core.addressing import PrefixAllocator
from repro.core.backbone import ExternalVantage, TransitBackbone
from repro.core.internet import VirtualInternet
from repro.core.rng import RandomStream
from repro.geo.regions import US_CITIES


class TestTransitBackbone:
    def test_one_router_per_city(self):
        net = VirtualInternet()
        backbone = TransitBackbone.build(
            net, US_CITIES[:5], PrefixAllocator.parse("198.18.0.0/16")
        )
        assert len(backbone.routers) == 5
        assert all(net.host(router.ip) is router for router in backbone.routers)

    def test_routers_registered_as_transit(self):
        net = VirtualInternet()
        backbone = TransitBackbone.build(
            net, US_CITIES[:3], PrefixAllocator.parse("198.18.0.0/16")
        )
        assert net.asn_of(backbone.routers[0].ip) == backbone.system.asn


class TestExternalVantage:
    def test_vantage_reachable_and_probing(self):
        net = VirtualInternet()
        allocator = PrefixAllocator.parse("198.18.0.0/16")
        backbone = TransitBackbone.build(net, US_CITIES[:3], allocator)
        vantage = ExternalVantage.build(net, allocator)
        stream = RandomStream(1, "vantage")
        origin = vantage.origin(stream)
        assert origin.asys is vantage.host.asys
        rtt = net.measure_rtt(origin, backbone.routers[0].ip, stream)
        assert rtt is not None and rtt > 0
