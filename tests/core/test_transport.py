"""The unified delivery layer: one verdict per simulated send."""

import pytest

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.errors import ResolutionError
from repro.core.faults import (
    DAY_S,
    FaultScenario,
    LossRule,
    ProbePolicy,
    ResolverOutage,
    Window,
)
from repro.core.transport import (
    DELIVERED,
    FILTERED,
    LOST,
    TIMED_OUT,
    Delivery,
    Transport,
)
from repro.core.world import WorldConfig, build_world
from repro.geo.regions import US_CITIES, city_named

#: An address outside every allocated prefix (allocator pool is 16/6).
UNROUTABLE_IP = "198.51.100.1"


@pytest.fixture()
def origin(world, stream):
    return world.vantage.origin(stream)


class TestDeliveryVerdicts:
    """Each outcome class, from the fault-free transport."""

    def test_ping_delivered(self, world, origin, stream):
        transport = world.transport
        before = transport.counters.delivered
        verdict = transport.ping(origin, world.echo_authority.host.ip, stream)
        assert verdict.outcome == DELIVERED
        assert verdict.delivered
        assert verdict.rtt_ms is not None and verdict.rtt_ms > 0
        assert not verdict.retryable
        assert transport.counters.delivered == before + 1

    def test_ping_filtered_names_the_hop(self, world, origin, stream):
        transport = world.transport
        egress_ip = world.operators["att"].egress_ips()[0]
        before = transport.counters.filtered
        verdict = transport.ping(origin, egress_ip, stream)
        assert verdict.outcome == FILTERED
        assert not verdict.delivered
        assert verdict.rtt_ms is None
        assert verdict.filtered_at is not None
        assert not verdict.retryable  # topology, not a fault: no retry
        assert transport.counters.filtered == before + 1

    def test_ping_lost_unroutable(self, world, origin, stream):
        transport = world.transport
        before = transport.counters.lost
        verdict = transport.ping(origin, UNROUTABLE_IP, stream)
        assert verdict.outcome == LOST
        assert verdict.rtt_ms is None
        assert not verdict.fault_induced
        assert transport.counters.lost == before + 1

    def test_flow_delivered(self, world, origin, stream):
        verdict = world.transport.flow(
            origin, world.echo_authority.host.ip, stream
        )
        assert verdict.outcome == DELIVERED
        assert verdict.rtt_ms > 0

    def test_flow_filtered(self, world, origin, stream):
        egress_ip = world.operators["tmobile"].egress_ips()[0]
        verdict = world.transport.flow(origin, egress_ip, stream)
        assert verdict.outcome == FILTERED

    def test_traceroute_delivered(self, world, origin, stream):
        result, verdict = world.transport.traceroute(
            origin, world.echo_authority.host.ip, stream
        )
        assert result.reached
        assert verdict.outcome == DELIVERED
        assert verdict.rtt_ms == result.hops[-1].rtt_ms

    def test_traceroute_lost(self, world, origin, stream):
        result, verdict = world.transport.traceroute(
            origin, UNROUTABLE_IP, stream
        )
        assert not result.reached
        assert verdict.outcome == LOST

    def test_http_delivered(self, world, origin, stream):
        replica = world.cdns["usonly"].all_replicas()[0]
        verdict = world.transport.http(origin, replica, stream)
        assert verdict.outcome == DELIVERED
        assert verdict.rtt_ms > 0


class TestGates:
    def test_fault_free_gate_is_shared_singleton(self, world, stream):
        transport = world.transport
        first = transport.gate("att", "ping", 0.0, stream)
        second = transport.gate("sprint", "http", 1.0, stream)
        assert first is second  # no allocation when nothing can go wrong
        assert first.outcome == DELIVERED

    def test_fault_free_dns_gate_delivers(self, world, stream):
        verdict = world.transport.dns_gate("att", "local", 0.0, stream)
        assert verdict.outcome == DELIVERED

    def test_fault_free_never_times_out(self, world):
        # The seed engine recorded the lognormal tail verbatim; the
        # fault-free transport must not clip it.
        assert not world.transport.dns_timed_out(1e9)


class TestCounters:
    def test_attempts_is_the_outcome_sum(self, world):
        counters = world.transport.counters
        assert counters.attempts == (
            counters.delivered
            + counters.filtered
            + counters.timed_out
            + counters.lost
        )

    def test_as_dict_shape(self, world):
        snapshot = world.transport.counters.as_dict()
        assert set(snapshot) == {
            "delivered", "filtered", "timed_out", "lost", "retries", "attempts",
        }

    def test_note_retry(self, world):
        counters = world.transport.counters
        before = counters.retries
        world.transport.note_retry()
        assert counters.retries == before + 1


class TestAuthorityLink:
    def test_reachable_authority_gets_a_sampler(self, world, origin, stream):
        sampler = world.transport.authority_link(
            origin, world.echo_authority.host.ip, "192.0.2.1"
        )
        assert sampler(stream) > 0

    def test_unreachable_authority_raises_on_use(self, world, origin, stream):
        sampler = world.transport.authority_link(
            origin, UNROUTABLE_IP, "192.0.2.1"
        )
        with pytest.raises(ResolutionError, match="unreachable"):
            sampler(stream)


#: A scenario whose faults are always on: certain loss for T-Mobile
#: pings, a whole-campaign AT&T local-resolver outage.
ALWAYS_ON = FaultScenario(
    name="test-always-on",
    loss_rules=(
        LossRule(rate=1.0, carrier="tmobile", probes=("ping",)),
    ),
    resolver_outages=(
        ResolverOutage(
            resolver_kind="local",
            carrier="att",
            window=Window(0.0, 365 * DAY_S),
        ),
    ),
    policy=ProbePolicy(dns_retries=2, backoff_s=1.0),
)


@pytest.fixture(scope="module")
def faulty_world():
    return build_world(WorldConfig(scenario=ALWAYS_ON))


class TestFaultInjection:
    def test_outage_times_the_dns_gate_out(self, faulty_world, stream):
        verdict = faulty_world.transport.dns_gate("att", "local", 10.0, stream)
        assert verdict.outcome == TIMED_OUT
        assert verdict.fault_induced and verdict.retryable

    def test_outage_is_scoped_to_its_carrier(self, faulty_world, stream):
        verdict = faulty_world.transport.dns_gate(
            "verizon", "local", 10.0, stream
        )
        assert verdict.outcome == DELIVERED

    def test_certain_loss_eats_the_ping(self, faulty_world, stream):
        transport = faulty_world.transport
        origin = faulty_world.vantage.origin(stream)
        verdict = transport.ping(
            origin,
            faulty_world.echo_authority.host.ip,
            stream,
            carrier="tmobile",
            now=0.0,
            probe="ping",
        )
        assert verdict.outcome == LOST
        assert verdict.fault_induced and verdict.retryable

    def test_probe_none_is_fault_exempt(self, faulty_world, stream):
        # Analysis re-probes pass no probe kind and must never draw
        # fault fates, even for a carrier under certain loss.
        origin = faulty_world.vantage.origin(stream)
        verdict = faulty_world.transport.ping(
            origin,
            faulty_world.echo_authority.host.ip,
            stream,
            carrier="tmobile",
            now=0.0,
        )
        assert verdict.outcome == DELIVERED

    def test_timeout_applies_under_faults(self, faulty_world):
        policy = faulty_world.transport.policy
        assert faulty_world.transport.dns_timed_out(policy.dns_timeout_ms + 1)
        assert not faulty_world.transport.dns_timed_out(policy.dns_timeout_ms - 1)


class TestRetryAccounting:
    def test_dns_retries_exhaust_the_policy_budget(self, faulty_world):
        """One outage-bound lookup: hits + retries == attempts."""
        mobility = MobilityModel(
            home_city=city_named("Chicago"),
            candidate_cities=US_CITIES,
            seed=7,
            device_key="retry-dev",
            travel_probability=0.0,
        )
        device = MobileDevice(
            device_id="retry-dev", carrier_key="att", mobility=mobility
        )
        from repro.measure.probes import DeviceProbeSession

        transport = faulty_world.transport
        stream = faulty_world.rng.fork("retry-tests").stream("s")
        session = DeviceProbeSession.begin(
            faulty_world, device, now=0.0, stream=stream
        )
        counters = transport.counters
        base_timed_out = counters.timed_out
        base_retries = counters.retries
        policy = transport.policy

        record = session.dns_local("www.google.com", now=0.0)
        assert record.delivery_outcome == "timed_out"
        assert record.rcode == "TIMEOUT"
        assert record.retries == policy.dns_retries
        # Every attempt (the first send plus each retry) timed out at
        # the gate, and each retry was counted exactly once.
        attempts = counters.timed_out - base_timed_out
        retries = counters.retries - base_retries
        assert retries == policy.dns_retries
        assert attempts == 1 + retries


class TestDeliveryObject:
    def test_slots_and_defaults(self):
        verdict = Delivery(DELIVERED, 12.5)
        assert verdict.rtt_ms == 12.5
        assert verdict.filtered_at is None
        assert not verdict.fault_induced
        with pytest.raises(AttributeError):
            verdict.extra = 1

    def test_retryable_tracks_fault_induced(self):
        assert Delivery(LOST, fault_induced=True).retryable
        assert not Delivery(LOST).retryable
