"""Virtual time."""

from datetime import datetime, timezone

import pytest

from repro.core.clock import (
    STUDY_DURATION_S,
    STUDY_EPOCH,
    VirtualClock,
    format_day,
    from_datetime,
    to_datetime,
)


class TestConversions:
    def test_epoch_is_march_2014(self):
        assert STUDY_EPOCH == datetime(2014, 3, 1, tzinfo=timezone.utc)

    def test_duration_is_five_months(self):
        assert STUDY_DURATION_S == 153 * 86400.0

    def test_roundtrip(self):
        when = datetime(2014, 5, 6, 12, 30, tzinfo=timezone.utc)
        assert to_datetime(from_datetime(when)) == when

    def test_naive_datetime_assumed_utc(self):
        naive = datetime(2014, 4, 1)
        assert from_datetime(naive) == 31 * 86400.0

    def test_format_day_matches_paper_labels(self):
        assert format_day(0.0) == "Mar-1"
        assert format_day(30 * 86400.0) == "Mar-31"


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        clock.advance(10.0)
        clock.advance(5.0)
        assert clock.now == 15.0

    def test_advance_rejects_negative(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_to_never_goes_back(self):
        clock = VirtualClock(now=100.0)
        clock.advance_to(50.0)
        assert clock.now == 100.0
        clock.advance_to(150.0)
        assert clock.now == 150.0

    def test_datetime_property(self):
        clock = VirtualClock(now=86400.0)
        assert clock.datetime.day == 2

    def test_elapsed_helpers(self):
        clock = VirtualClock(now=7200.0)
        assert clock.hours_elapsed() == 2.0
        assert clock.days_elapsed() == pytest.approx(1 / 12)
