"""Study configuration scales and the ECS world flag."""

from repro import CellularDNSStudy, StudyConfig
from repro.core.world import WorldConfig, build_world


class TestStudyConfig:
    def test_default_world_config_attached(self):
        config = StudyConfig()
        assert isinstance(config.world, WorldConfig)

    def test_seed_propagates_to_world(self):
        study = CellularDNSStudy(StudyConfig.smoke_scale())
        assert study.world.rng.master_seed == study.config.seed

    def test_campaign_config_mirrors_scale(self):
        config = StudyConfig(device_scale=0.5, duration_days=10.0)
        campaign = config.campaign_config()
        assert campaign.device_scale == 0.5
        assert campaign.duration_days == 10.0

    def test_smoke_scale_is_small(self):
        smoke = StudyConfig.smoke_scale()
        paper = StudyConfig.paper_scale()
        assert smoke.device_scale < paper.device_scale
        assert smoke.interval_hours > paper.interval_hours


class TestEcsWorldFlag:
    def test_flag_propagates_everywhere(self):
        world = build_world(WorldConfig(ecs_enabled=True))
        assert world.google_dns.ecs_enabled
        assert world.opendns.ecs_enabled
        assert all(
            operator.ecs_enabled for operator in world.operators.values()
        )

    def test_mapping_overrides_propagate(self):
        world = build_world(
            WorldConfig(cdn_mapping_overrides={"cellular_blunder_prob": 0.5})
        )
        for provider in world.cdns.values():
            assert provider.mapping.cellular_blunder_prob == 0.5

    def test_ttl_override_propagates(self):
        world = build_world(WorldConfig(cdn_a_ttl_override=123))
        for provider in world.cdns.values():
            assert provider.a_ttl_override == 123

    def test_allocator_retained(self):
        world = build_world()
        assert world.allocator is not None
        before = world.allocator.remaining
        world.allocator.allocate24()
        assert world.allocator.remaining == before - 256
