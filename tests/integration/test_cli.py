"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.output == "campaign.jsonl"
        assert args.seed == 2014

    def test_validate_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate"])


SMALL = ["--scale", "0.0", "--days", "3", "--interval-hours", "24"]


@pytest.fixture(scope="module")
def archived_dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "campaign.jsonl"
    code = main(["run", *SMALL, "--output", str(path)])
    assert code == 0
    return path


class TestCommands:
    def test_run_writes_jsonl(self, archived_dataset):
        content = archived_dataset.read_text().splitlines()
        assert len(content) > 10

    def test_validate_clean_dataset(self, archived_dataset, capsys):
        code = main(["validate", str(archived_dataset)])
        captured = capsys.readouterr()
        assert code == 0
        assert "0 errors" in captured.out

    def test_validate_broken_dataset(self, tmp_path, archived_dataset, capsys):
        lines = archived_dataset.read_text().splitlines()
        record_line = next(
            line for line in lines if not line.startswith('{"_metadata"')
        )
        broken = record_line.replace('"latitude":', '"latitude": 999, "x":')
        assert broken != record_line
        bad_path = tmp_path / "bad.jsonl"
        bad_path.write_text(broken + "\n")
        code = main(["validate", str(bad_path)])
        assert code == 1

    def test_report_from_dataset(self, archived_dataset, capsys):
        code = main(["report", *SMALL, "--dataset", str(archived_dataset)])
        captured = capsys.readouterr()
        assert code == 0
        assert "Table 1" in captured.out
        assert "Fig 7" in captured.out

    def test_run_report_streams_report_and_identical_archive(
        self, archived_dataset, tmp_path, capsys
    ):
        """``run --report`` prints the post-hoc report without re-reading
        the archive, and writes byte-identical dataset lines."""
        from repro.measure.records import Dataset

        main(["report", *SMALL, "--dataset", str(archived_dataset)])
        posthoc = capsys.readouterr().out

        streamed_path = tmp_path / "streamed.jsonl"
        code = main(["run", *SMALL, "--report", "-o", str(streamed_path)])
        streamed = capsys.readouterr().out
        assert code == 0
        assert streamed == posthoc
        assert (
            Dataset.load(str(streamed_path)).content_hash()
            == Dataset.load(str(archived_dataset)).content_hash()
        )

    def test_export_from_dataset(self, archived_dataset, tmp_path, capsys):
        out_dir = tmp_path / "figures"
        code = main([
            "export", *SMALL,
            "--dataset", str(archived_dataset),
            "--output-dir", str(out_dir),
        ])
        assert code == 0
        assert any(out_dir.iterdir())
