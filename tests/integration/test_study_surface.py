"""Coverage of the study object's full public surface.

Every artifact method must return well-formed data on the session
campaign — these tests pin the API shape that examples, benches and the
CLI all build on.
"""

import pytest

from repro.analysis.stats import ECDF


class TestFigureMethods:
    def test_fig2_for_every_carrier(self, study):
        for carrier in study.world.operators:
            result = study.fig2_replica_differentials(carrier)
            assert result.carrier == carrier
            assert len(result.per_access) >= len(result.per_replica)

    def test_fig2_domain_scoping(self, study):
        scoped = study.fig2_replica_differentials(
            "verizon", domain="www.google.com"
        )
        unscoped = study.fig2_replica_differentials("verizon")
        assert len(scoped.per_replica) <= len(unscoped.per_replica)

    def test_fig3_curves_are_ecdfs(self, study):
        for carrier in ("att", "lgu"):
            curves = study.fig3_resolution_by_technology(carrier)
            assert curves
            assert all(isinstance(ecdf, ECDF) for ecdf in curves.values())

    def test_fig3_technologies_match_carrier_profile(self, study):
        for carrier, operator in study.world.operators.items():
            allowed = {
                technology.value
                for technology in operator.radio_profile.technologies
            }
            curves = study.fig3_resolution_by_technology(carrier)
            assert set(curves) <= allowed, carrier

    def test_fig8_fig9_fig12_per_device(self, study):
        device = study.campaign.devices_of("verizon")[0]
        fig8 = study.fig8_resolver_churn(device.device_id)
        fig9 = study.fig9_static_timeline(device.device_id)
        fig12 = study.fig12_google_churn(device.device_id)
        assert fig8.observations
        assert len(fig9.observations) <= len(fig8.observations)
        assert fig12.resolver_kind == "google"

    def test_fig10_all_domains(self, study):
        for domain in study.domain_list()[:3]:
            result = study.fig10_similarity("tmobile", domain=domain)
            for value in result.same_prefix + result.different_prefix:
                assert -1e-9 <= value <= 1.0 + 1e-9

    def test_fig14_opendns_variant(self, study):
        result = study.fig14_public_replicas("att", public_kind="opendns")
        assert result.public_kind == "opendns"
        assert result.percent_changes


class TestTableMethods:
    def test_table4_covers_all_carriers_with_externals(self, study):
        rows = {row.carrier for row in study.table4_reachability()}
        assert rows == set(study.world.operators)

    def test_table5_has_all_cells(self, study):
        rows = study.table5_resolver_counts()
        cells = {(row.carrier, row.resolver_kind) for row in rows}
        for carrier in study.world.operators:
            for kind in ("local", "google", "opendns"):
                assert (carrier, kind) in cells

    def test_egress_counts_bounded_by_deployment(self, study):
        counts = study.egress_point_counts()
        for carrier, entry in counts.items():
            deployed = len(study.world.operators[carrier].egress_points)
            assert entry.count <= deployed


class TestDatasetShape:
    def test_experiment_schema_stability(self, dataset):
        record = dataset.experiments[0]
        payload = record.to_json()
        for key in (
            '"device_id"', '"carrier"', '"resolutions"', '"pings"',
            '"traceroutes"', '"http_gets"', '"resolver_ids"',
        ):
            assert key in payload

    def test_local_resolutions_paired(self, dataset):
        # The Fig 7 invariant: every local first attempt has a second.
        for record in dataset.experiments[:50]:
            by_domain = {}
            for r in record.resolutions_via("local"):
                by_domain.setdefault(r.domain, set()).add(r.attempt)
            assert all(attempts == {1, 2} for attempts in by_domain.values())

    def test_identifications_resolve_to_known_infrastructure(
        self, study, dataset
    ):
        world = study.world
        checked = 0
        for record in dataset.experiments[:100]:
            identification = record.resolver_id("local")
            if identification is None:
                continue
            operator = world.operators[record.carrier]
            assert identification.observed_external_ip in set(
                operator.deployment.external_ips()
            )
            checked += 1
        assert checked > 50

    def test_replica_answers_belong_to_cdns(self, study, dataset):
        world = study.world
        for record in dataset.experiments[:30]:
            for resolution in record.resolutions:
                for address in resolution.addresses:
                    if "whoami" in resolution.domain:
                        continue
                    assert world.replica_owner(address) is not None
