"""The example scripts stay runnable."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestQuickstart:
    def test_runs_and_prints_all_sections(self):
        result = _run("quickstart.py", "--carrier", "skt", "--city", "Busan")
        assert result.returncode == 0, result.stderr
        assert "DNS resolutions" in result.stdout
        assert "Resolver identification" in result.stdout
        assert "traceroute" in result.stdout

    def test_every_carrier_works(self):
        # Cheap smoke across one more carrier with its own structure.
        result = _run("quickstart.py", "--carrier", "verizon")
        assert result.returncode == 0, result.stderr
        assert "observed external" in result.stdout


class TestScriptedStudies:
    def test_churn_timeline_script(self):
        result = _run(
            "resolver_churn_timeline.py", "--carrier", "lgu", "--days", "20",
        )
        assert result.returncode == 0, result.stderr
        assert "Fig 8 style" in result.stdout
        assert "•" in result.stdout

    def test_full_study_script_small(self, tmp_path):
        out = tmp_path / "mini.jsonl"
        result = _run(
            "full_study.py", "--scale", "0.0", "--days", "10",
            "--save", str(out),
        )
        assert result.returncode == 0, result.stderr
        assert "Table 3" in result.stdout
        assert out.exists()
