"""Fault scenarios end to end, and the byte-identity contract.

Two commitments from the transport refactor, pinned here:

* **Byte identity** — a fault-free campaign (no scenario, or the
  bundled ``baseline``) hashes byte-identically to the pre-transport
  engine; the tiny-scale goldens below were recorded against it.
* **Scenarios bite** — each bundled fault scenario shifts the dataset
  and leaves the documented artifacts (fault outcomes on the wire,
  retry counters, degraded radio epochs).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CellularDNSStudy, StudyConfig
from repro.core.faults import BUNDLED_SCENARIOS, load_scenario
from repro.core.world import WorldConfig

#: Tiny-scale campaign goldens (device_scale=0.05, 4 days, 24 h
#: interval).  A fault-free campaign must keep reproducing them byte
#: for byte.  Re-recorded (seeds 2014, 99) when CDN /24 mapping
#: decisions became order-independent: the old bytes encoded whichever
#: resolver queried each /24 first, the order-dependence that made
#: shard-order a hash hazard.
TINY_GOLDEN_HASHES = {
    2014: "f572f84c1dab854d4183ef48fe62930684ff40a437784ef62a6e0cb897a5b5bf",
    7: "6a272ae6d07a34961638c8fe7f8dc37d100b2d42a2b5fe4af5f72e739c8ffc4d",
    99: "d247105c1b5868fe403354aee2be8e37c4f3102486dfd899332298e339392750",
}


def _tiny_study(seed: int, scenario=None) -> CellularDNSStudy:
    world = WorldConfig(seed=seed)
    if scenario is not None:
        world.scenario = load_scenario(scenario)
    return CellularDNSStudy(
        StudyConfig(
            seed=seed,
            device_scale=0.05,
            duration_days=4.0,
            interval_hours=24.0,
            world=world,
        )
    )


def _tiny_hash(seed: int, scenario=None) -> str:
    return _tiny_study(seed, scenario).dataset.content_hash()


class TestByteIdentity:
    @pytest.mark.parametrize("seed", sorted(TINY_GOLDEN_HASHES))
    def test_fault_free_matches_the_pre_transport_golden(self, seed):
        assert _tiny_hash(seed) == TINY_GOLDEN_HASHES[seed]

    def test_baseline_scenario_is_the_fault_free_engine(self):
        assert _tiny_hash(2014, "baseline") == TINY_GOLDEN_HASHES[2014]

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_baseline_equals_no_scenario_for_any_seed(self, seed):
        # The policy-only baseline scenario must never perturb a draw.
        assert _tiny_hash(seed, "baseline") == _tiny_hash(seed)


@pytest.fixture(scope="module")
def baseline_hash():
    return _tiny_hash(2014)


class TestBundledScenariosShiftTheDataset:
    @pytest.fixture(scope="class")
    def outage_study(self):
        return _tiny_study(2014, "resolver-outage")

    @pytest.fixture(scope="class")
    def lossy_study(self):
        return _tiny_study(2014, "lossy-2g")

    def test_resolver_outage(self, outage_study, baseline_hash):
        dataset = outage_study.dataset
        assert dataset.content_hash() != baseline_hash
        window = BUNDLED_SCENARIOS["resolver-outage"].resolver_outages[0].window
        faulted = [
            resolution
            for record in dataset
            if record.carrier == "att" and window.contains(record.started_at)
            for resolution in record.resolutions
            if resolution.resolver_kind == "local"
        ]
        assert faulted
        # Local lookups inside the outage window time out after
        # exhausting the retry budget; the failure reaches the wire.
        policy = outage_study.config.world.scenario.policy
        assert all(r.delivery_outcome == "timed_out" for r in faulted)
        assert all(r.rcode == "TIMEOUT" for r in faulted)
        assert all(r.retries == policy.dns_retries for r in faulted)
        counters = outage_study.campaign.world.transport.counters
        assert counters.timed_out > 0
        assert counters.retries > 0

    def test_resolver_outage_spares_other_carriers(
        self, outage_study, baseline_hash
    ):
        dataset = outage_study.dataset
        others = [
            resolution
            for record in dataset
            if record.carrier != "att"
            for resolution in record.resolutions
        ]
        assert all(r.delivery_outcome != "timed_out" for r in others)

    def test_lossy_2g(self, lossy_study, baseline_hash):
        dataset = lossy_study.dataset
        assert dataset.content_hash() != baseline_hash
        window = BUNDLED_SCENARIOS["lossy-2g"].degraded_epochs[0].window
        in_window = [
            record
            for record in dataset
            if record.carrier == "tmobile" and window.contains(record.started_at)
        ]
        assert in_window
        # The degraded epoch pins every in-window T-Mobile session to EDGE.
        assert all(record.technology == "EDGE" for record in in_window)
        counters = lossy_study.campaign.world.transport.counters
        assert counters.lost > 0
        assert counters.retries > 0

    def test_egress_failover(self, baseline_hash):
        assert _tiny_hash(2014, "egress-failover") != baseline_hash

    def test_fault_free_counters_record_no_faults(self):
        study = _tiny_study(2014)
        study.dataset
        counters = study.campaign.world.transport.counters
        assert counters.lost == 0
        assert counters.retries == 0
        assert counters.delivered > 0


class TestScenarioCli:
    def test_run_with_bundled_scenario(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "campaign.jsonl"
        status = main([
            "run",
            "--scenario", "lossy-2g",
            "--scale", "0.05",
            "--days", "4",
            "--interval-hours", "24",
            "--output", str(output),
        ])
        assert status == 0
        assert output.exists()
        text = output.read_text()
        # Fault outcomes ride the wire only when a fault actually hit.
        assert '"outcome":"lost"' in text
        assert '"retries":' in text

    def test_run_fault_free_emits_legacy_wire(self, tmp_path):
        from repro.cli import main

        output = tmp_path / "campaign.jsonl"
        status = main([
            "run",
            "--scale", "0.05",
            "--days", "4",
            "--interval-hours", "24",
            "--output", str(output),
        ])
        assert status == 0
        text = output.read_text()
        assert '"outcome"' not in text
        assert '"retries"' not in text

    def test_unknown_scenario_rejected(self):
        from repro.cli import main

        with pytest.raises(ValueError, match="unknown scenario"):
            main([
                "run",
                "--scenario", "no-such-scenario",
                "--scale", "0.05",
                "--days", "4",
            ])
