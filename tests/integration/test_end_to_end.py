"""End-to-end study API and dataset lifecycle."""

import pytest

from repro import CellularDNSStudy, StudyConfig
from repro.measure.records import Dataset


class TestStudyApi:
    def test_table1_lists_six_carriers_us_first(self, study):
        rows = study.table1_clients()
        assert len(rows) == 6
        assert [row[2] for row in rows] == ["US", "US", "US", "US", "KR", "KR"]
        assert all(row[1] >= 1 for row in rows)

    def test_table2_domains(self, study):
        rows = study.table2_domains()
        assert len(rows) == 9
        assert all(row[2].endswith("-sim.net") for row in rows)

    def test_domain_list(self, study):
        assert len(study.domain_list()) == 9

    def test_renderers_produce_text(self, study):
        assert "Table 1" in study.render_table1()
        assert "Consistency" in study.render_table3()
        assert "p50" in study.render_fig5()

    def test_dataset_cached(self, study):
        assert study.dataset is study.dataset

    def test_use_dataset_injection(self):
        fresh = CellularDNSStudy(StudyConfig.smoke_scale())
        injected = Dataset()
        fresh.use_dataset(injected)
        assert fresh.dataset is injected


class TestDatasetLifecycle:
    def test_roundtrip_through_jsonl(self, dataset, tmp_path):
        path = tmp_path / "dataset.jsonl"
        subset = Dataset(
            experiments=dataset.experiments[:50], metadata=dataset.metadata
        )
        subset.save(str(path))
        loaded = Dataset.load(str(path))
        assert loaded.experiments == subset.experiments
        assert loaded.metadata == subset.metadata

    def test_reanalysis_of_loaded_dataset(self, study, dataset, tmp_path):
        """A dataset reloaded from disk analyses identically."""
        from repro.analysis.consistency import ldns_pair_table

        path = tmp_path / "dataset.jsonl"
        dataset.save(str(path))
        loaded = Dataset.load(str(path))
        assert ldns_pair_table(loaded) == ldns_pair_table(dataset)

    def test_metadata_describes_campaign(self, dataset):
        assert dataset.metadata["seed"] == 2014
        assert dataset.metadata["experiments"] == len(dataset)


class TestScalePresets:
    def test_smoke_scale_runs_fast(self):
        study = CellularDNSStudy(StudyConfig.smoke_scale())
        assert len(study.dataset) > 50

    def test_paper_scale_configuration(self):
        config = StudyConfig.paper_scale()
        assert config.device_scale == 1.0
        assert config.interval_hours == 1.0
        counts = config.campaign_config().resolved_counts(
            ["att", "sprint", "tmobile", "verizon", "skt", "lgu"]
        )
        assert sum(counts.values()) == 158


class TestExperimentVolume:
    def test_every_device_reports(self, study, dataset):
        reporting = set(dataset.device_ids())
        expected = {device.device_id for device in study.campaign.devices}
        assert reporting == expected

    def test_resolution_volume(self, dataset):
        # 9 domains x (2 local + google + opendns) per experiment.
        total = sum(len(record.resolutions) for record in dataset)
        assert total == len(dataset) * 9 * 4
