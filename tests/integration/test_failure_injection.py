"""Failure injection: the pipeline degrades, it does not crash.

Measurement infrastructure fails in the field — authorities vanish,
replicas stop answering, domains disappear.  The experiment script and
analyses must record the failure and carry on, like the paper's app did
on flaky volunteer devices.
"""

import pytest

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.world import build_world
from repro.dns.message import RCode, RRType
from repro.measure.experiment import ExperimentOptions, ExperimentRunner
from repro.geo.regions import US_CITIES, city_named


@pytest.fixture()
def fresh_world():
    """A private world these destructive tests may mutilate."""
    return build_world()


def _device(carrier="att", key="fi-dev"):
    return MobileDevice(
        device_id=key,
        carrier_key=carrier,
        mobility=MobilityModel(
            home_city=city_named("Chicago"),
            candidate_cities=US_CITIES,
            seed=5,
            device_key=key,
            travel_probability=0.0,
        ),
    )


class TestMissingAuthority:
    def test_unknown_domain_servfails_cleanly(self, fresh_world, stream):
        engine = fresh_world.operators["att"].deployment.externals[0].engine
        result = engine.resolve("www.gone.example", RRType.A, 0.0, stream)
        assert result.rcode is RCode.SERVFAIL
        assert result.addresses() == []

    def test_experiment_survives_unresolvable_domain(self, fresh_world):
        runner = ExperimentRunner(
            fresh_world,
            ExperimentOptions(domains=["www.gone.example", "m.yelp.com"]),
        )
        record = runner.run(_device(), started_at=0.0, sequence=0)
        gone = [
            r for r in record.resolutions if r.domain == "www.gone.example"
        ]
        assert gone
        assert all(not r.addresses for r in gone)
        # The healthy domain still produced replica probes.
        assert record.http_gets


class TestDeadReplicas:
    def test_silent_replicas_recorded_as_failures(self, fresh_world):
        for replica in fresh_world.cdns["continental"].all_replicas():
            replica.host.responds_to_ping = False
        runner = ExperimentRunner(
            fresh_world, ExperimentOptions(domains=["m.yelp.com"])
        )
        record = runner.run(_device(key="fi-dev-2"), started_at=0.0, sequence=0)
        replica_pings = [
            ping for ping in record.pings if ping.target_kind == "replica"
        ]
        assert replica_pings
        assert all(ping.rtt_ms is None for ping in replica_pings)
        # HTTP flows are independent of ICMP silence and still complete.
        assert any(http.ttfb_ms is not None for http in record.http_gets)

    def test_analysis_tolerates_failed_probes(self, fresh_world):
        for replica in fresh_world.cdns["continental"].all_replicas():
            replica.host.responds_to_ping = False
        runner = ExperimentRunner(
            fresh_world, ExperimentOptions(domains=["m.yelp.com"])
        )
        from repro.measure.records import Dataset

        dataset = Dataset()
        dataset.add(runner.run(_device(key="fi-dev-3"), 0.0, 0))
        from repro.analysis.localization import replica_differentials

        # No crash; simply no (or partial) differentials.
        replica_differentials(dataset, "att")


class TestEmptyAndPartialDatasets:
    def test_analyses_on_empty_dataset(self):
        from repro.analysis.cache import cache_comparison
        from repro.analysis.consistency import ldns_pair_table
        from repro.analysis.latency import resolution_times
        from repro.measure.records import Dataset

        empty = Dataset()
        assert ldns_pair_table(empty) == []
        assert cache_comparison(empty).miss_rate() == 0.0
        assert resolution_times(empty, "att").is_empty

    def test_reachability_with_no_observations(self, fresh_world):
        from repro.analysis.reachability import probe_external_reachability
        from repro.measure.records import Dataset

        rows = probe_external_reachability(fresh_world, Dataset())
        assert rows == []
