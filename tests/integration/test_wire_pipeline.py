"""The wire codec against live pipeline traffic.

Everything the simulated authorities emit must survive a real
encode/decode round trip — the substrate's messages are valid DNS
packets, not just convenient Python objects.
"""

from repro.cdn.catalog import MEASURED_DOMAINS
from repro.core.world import WHOAMI_ZONE
from repro.dns.message import RRType, make_query
from repro.dns.wire import decode_message, encode_message


class TestLiveAnswersOnTheWire:
    def test_origin_cnames_roundtrip(self, world):
        for spec in MEASURED_DOMAINS:
            authority = world.directory.authority_for(spec.name)
            response = authority.answer(
                make_query(spec.name, RRType.A, msg_id=7), "198.18.0.1", 0.0
            )
            decoded = decode_message(encode_message(response))
            assert decoded.cname_chain() == response.cname_chain()
            assert decoded.msg_id == 7

    def test_cdn_answers_roundtrip(self, world):
        for spec in MEASURED_DOMAINS:
            provider = world.cdns[spec.cdn_key]
            response = provider.authority.answer(
                make_query(spec.edge_name, RRType.A), "198.18.0.1", 0.0
            )
            decoded = decode_message(encode_message(response))
            assert decoded.answer_addresses() == response.answer_addresses()
            assert all(
                record.ttl == spec.a_ttl for record in decoded.a_records()
            )

    def test_echo_answers_roundtrip(self, world):
        response = world.echo_authority.answer(
            make_query(f"wire.local.{WHOAMI_ZONE}"), "203.0.113.9", 0.0
        )
        decoded = decode_message(encode_message(response))
        assert decoded.answer_addresses() == ["203.0.113.9"]
        assert decoded.a_records()[0].ttl == 0

    def test_full_resolution_chain_on_the_wire(self, world, stream):
        """Chase a CNAME across authorities, wire-encoding each hop."""
        qname = "www.buzzfeed.com"
        current = qname
        hops = 0
        addresses = []
        while hops < 8:
            authority = world.directory.authority_for(current)
            response = authority.answer(make_query(current), "198.18.0.1", 0.0)
            decoded = decode_message(encode_message(response))
            addresses = decoded.answer_addresses()
            if addresses:
                break
            chain = decoded.cname_chain()
            assert chain, f"dead end at {current}"
            current = chain[-1]
            hops += 1
        assert addresses
        assert all(world.replica_owner(ip) is not None for ip in addresses)
