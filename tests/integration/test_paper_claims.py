"""The paper's shape claims, asserted against a real (small) campaign.

These are the load-bearing reproduction tests: each corresponds to a
claim listed in DESIGN.md's "shape targets" section.  Thresholds are
looser than the headline numbers because the session campaign is ~1%
of the paper's scale.
"""

import pytest

US_CARRIERS = ("att", "sprint", "tmobile", "verizon")
SK_CARRIERS = ("skt", "lgu")


class TestClaimF2ReplicaDifferentials:
    def test_all_carriers_see_large_differentials(self, study):
        for carrier in (*US_CARRIERS, *SK_CARRIERS):
            ecdf = study.fig2_replica_differentials(carrier).ecdf()
            assert not ecdf.is_empty, carrier
            # Substantial mass at >=50% latency increase over the best.
            assert ecdf.fraction_above(50.0) > 0.10, carrier

    def test_some_carrier_sees_doubled_latency_often(self, study):
        worst = max(
            study.fig2_replica_differentials(carrier).ecdf().fraction_above(100.0)
            for carrier in US_CARRIERS
        )
        assert worst > 0.2

    def test_heavy_tail_exists(self, study):
        tails = [
            study.fig2_replica_differentials(carrier).ecdf().fraction_above(400.0)
            for carrier in (*US_CARRIERS, *SK_CARRIERS)
        ]
        assert max(tails) > 0.02


class TestClaimF3RadioBands:
    def test_lte_band_fastest_per_carrier(self, study):
        for carrier in ("att", "verizon", "skt"):
            curves = study.fig3_resolution_by_technology(carrier)
            assert "LTE" in curves
            others = [
                ecdf.median
                for name, ecdf in curves.items()
                if name != "LTE" and len(ecdf) >= 10
            ]
            if others:
                assert curves["LTE"].median < min(others), carrier

    def test_3g_band_roughly_50ms_slower(self, study):
        curves = study.fig3_resolution_by_technology("verizon")
        if "EHRPD" in curves and len(curves["EHRPD"]) >= 10:
            gap = curves["EHRPD"].median - curves["LTE"].median
            assert 25.0 < gap < 150.0

    def test_2g_near_one_second(self, study):
        # 1xRTT resolutions take close to a second (Sec 3.3).
        curves = study.fig3_resolution_by_technology("sprint")
        if "1xRTT" in curves and len(curves["1xRTT"]) >= 3:
            assert curves["1xRTT"].median > 600.0


class TestClaimT3IndirectResolution:
    def test_every_carrier_indirect(self, study):
        rows = {row.carrier: row for row in study.table3_ldns_pairs()}
        assert set(rows) == set((*US_CARRIERS, *SK_CARRIERS))
        for carrier, row in rows.items():
            # Client-facing and external-facing addresses differ.
            assert row.external_addresses >= row.client_addresses, carrier

    def test_verizon_fully_consistent(self, study):
        rows = {row.carrier: row for row in study.table3_ldns_pairs()}
        assert rows["verizon"].consistency_pct == pytest.approx(100.0)

    def test_sprint_consistency_over_60(self, study):
        rows = {row.carrier: row for row in study.table3_ldns_pairs()}
        assert rows["sprint"].consistency_pct > 60.0

    def test_tmobile_heavily_balanced(self, study):
        rows = {row.carrier: row for row in study.table3_ldns_pairs()}
        assert rows["tmobile"].consistency_pct < 30.0
        assert rows["tmobile"].external_addresses > 10

    def test_verizon_tiers_in_split_ases(self, study):
        world = study.world
        for record in study.dataset:
            if record.carrier != "verizon":
                continue
            identification = record.resolver_id("local")
            if identification is None:
                continue
            assert world.internet.asn_of(identification.configured_ip) == 6167
            assert (
                world.internet.asn_of(identification.observed_external_ip) == 22394
            )
            break
        else:
            pytest.fail("no verizon identification found")


class TestClaimF4ResolverDistance:
    def test_external_farther_for_us_hierarchies(self, study):
        for carrier in ("att", "sprint", "tmobile"):
            curves = study.fig4_resolver_distance(carrier)
            assert "client" in curves and "external" in curves, carrier
            assert curves["external"].median > curves["client"].median, carrier

    def test_skt_tiers_colocated(self, study):
        curves = study.fig4_resolver_distance("skt")
        gap = abs(curves["external"].median - curves["client"].median)
        assert gap < 15.0

    def test_verizon_and_lgu_externals_silent_to_clients(self, study):
        for carrier in ("verizon", "lgu"):
            curves = study.fig4_resolver_distance(carrier)
            assert "external" not in curves, carrier


class TestClaimF5F6ResolutionTimes:
    def test_us_medians_plausible(self, study):
        for carrier, ecdf in study.fig5_us_resolution().items():
            assert 25.0 < ecdf.median < 120.0, carrier

    def test_sk_medians_plausible(self, study):
        for carrier, ecdf in study.fig6_sk_resolution().items():
            assert 25.0 < ecdf.median < 80.0, carrier

    def test_sk_bimodal_above_median(self, study):
        # Cache misses cross the Pacific: p90 far above p50 (Fig 6).
        for carrier, ecdf in study.fig6_sk_resolution().items():
            assert ecdf.quantile(0.9) > 3.0 * ecdf.median, carrier

    def test_us_long_tails(self, study):
        for carrier, ecdf in study.fig5_us_resolution().items():
            assert ecdf.quantile(0.99) > 2.0 * ecdf.median, carrier


class TestClaimF7Cache:
    def test_miss_rate_near_20_percent(self, study):
        comparison = study.fig7_cache()
        assert 0.10 < comparison.miss_rate() < 0.40

    def test_second_lookup_faster(self, study):
        comparison = study.fig7_cache()
        assert comparison.second.median <= comparison.first.median
        assert comparison.second.quantile(0.9) < comparison.first.quantile(0.9)


class TestClaimT4Opaqueness:
    def test_reachability_table(self, study):
        rows = {row.carrier: row for row in study.table4_reachability()}
        # Verizon and AT&T answer a majority of external pings.
        assert rows["verizon"].ping_fraction > 0.5
        assert rows["att"].ping_fraction > 0.5
        # T-Mobile and the SK carriers answer none.
        assert rows["tmobile"].ping_responsive == 0
        assert rows["skt"].ping_responsive == 0
        assert rows["lgu"].ping_responsive == 0
        # No traceroute ever completes into any cellular network.
        assert all(row.traceroute_responsive == 0 for row in rows.values())


class TestClaimF8F9Churn:
    def _busiest_device(self, study, carrier):
        devices = study.campaign.devices_of(carrier)
        timelines = [
            study.fig8_resolver_churn(device.device_id) for device in devices
        ]
        return max(timelines, key=lambda timeline: len(timeline.observations))

    def test_tmobile_churns_across_prefixes(self, study):
        timeline = self._busiest_device(study, "tmobile")
        assert timeline.unique_ips() > 10
        assert timeline.unique_prefixes() > 5

    def test_att_relatively_stable(self, study):
        att = self._busiest_device(study, "att")
        tmobile = self._busiest_device(study, "tmobile")
        assert att.unique_ips() < tmobile.unique_ips()

    def test_sk_churn_stays_within_two_prefixes(self, study):
        for carrier in SK_CARRIERS:
            timeline = self._busiest_device(study, carrier)
            assert timeline.unique_prefixes() <= 2, carrier
            # Plenty of IP-level churn despite prefix stability.
            assert timeline.unique_ips() >= 3, carrier

    def test_static_clients_still_churn(self, study):
        # Fig 9: filtered to the home cluster, resolvers still change.
        timeline = None
        for device in study.campaign.devices_of("tmobile"):
            candidate = study.fig9_static_timeline(device.device_id)
            if len(candidate.observations) >= 20:
                timeline = candidate
                break
        assert timeline is not None
        assert timeline.unique_ips() > 3


class TestClaimF10Similarity:
    def test_same_prefix_identical_sets(self, study):
        for carrier in ("tmobile", "skt"):
            result = study.fig10_similarity(carrier)
            if result.same_prefix:
                assert result.median_same_prefix() > 0.9, carrier

    def test_different_prefix_mostly_disjoint(self, study):
        result = study.fig10_similarity("tmobile")
        assert len(result.different_prefix) > 50
        assert result.fraction_disjoint() > 0.6


class TestClaimEgress:
    def test_growth_over_xu_et_al(self, study):
        counts = study.egress_point_counts()
        # Xu et al. saw 4-6 egress points per US carrier; we must observe
        # clearly more for the carriers with many deployed egresses.
        observed = [counts[key].count for key in ("sprint", "tmobile", "verizon")]
        assert max(observed) > 6
        assert counts["verizon"].count >= counts["att"].count


class TestClaimT5PublicCounts:
    def test_google_more_ips_than_local_for_verizon(self, study):
        rows = {
            (row.carrier, row.resolver_kind): row
            for row in study.table5_resolver_counts()
        }
        assert (
            rows[("verizon", "google")].unique_ips
            > rows[("verizon", "local")].unique_ips
        )

    def test_public_prefix_counts_comparable(self, study):
        rows = {
            (row.carrier, row.resolver_kind): row
            for row in study.table5_resolver_counts()
        }
        for carrier in US_CARRIERS:
            google = rows[(carrier, "google")]
            # Google's anycast structure: clusters are /24s, so IPs per
            # /24 stay small even as addresses accumulate.
            assert google.unique_prefixes >= google.unique_ips / 4

    def test_sk_locals_concentrated_in_prefixes(self, study):
        rows = {
            (row.carrier, row.resolver_kind): row
            for row in study.table5_resolver_counts()
        }
        for carrier in SK_CARRIERS:
            local = rows[(carrier, "local")]
            assert local.unique_prefixes <= 2
            assert local.unique_ips > 2 * local.unique_prefixes


class TestClaimF11F13PublicDns:
    def test_cellular_ldns_closer_where_measurable(self, study):
        for carrier in ("att", "skt"):
            curves = study.fig11_public_distance(carrier)
            assert curves["local-external"].median < curves["google"].median, carrier

    def test_verizon_lgu_externals_unmeasurable(self, study):
        for carrier in ("verizon", "lgu"):
            curves = study.fig11_public_distance(carrier)
            assert "local-external" not in curves, carrier

    def test_local_resolution_faster_at_median(self, study):
        for carrier in ("att", "verizon", "skt", "lgu"):
            curves = study.fig13_public_resolution(carrier)
            assert curves["local"].median < curves["google"].median, carrier
            assert curves["local"].median < curves["opendns"].median, carrier

    def test_sk_public_resolution_much_slower(self, study):
        for carrier in SK_CARRIERS:
            curves = study.fig13_public_resolution(carrier)
            assert curves["google"].median > 1.25 * curves["local"].median, carrier

    def test_public_tail_shorter(self, study):
        # Public DNS shows lower variance / shorter tails (Sec 6.2).
        curves = study.fig13_public_resolution("skt")
        assert curves["opendns"].quantile(0.9) < curves["local"].quantile(0.9)


class TestClaimF12GoogleChurn:
    def test_devices_see_multiple_google_prefixes(self, study):
        best = 0
        for device in study.campaign.devices[:30]:
            timeline = study.fig12_google_churn(device.device_id)
            best = max(best, timeline.unique_prefixes())
        assert best >= 3


class TestClaimF14PublicReplicas:
    def test_majority_of_comparisons_tie(self, study):
        ties = [
            study.fig14_public_replicas(carrier).fraction_equal()
            for carrier in ("att", "verizon", "skt")
        ]
        assert min(ties) > 0.4
        assert max(ties) > 0.6

    def test_public_equal_or_better_majority(self, study):
        # The abstract's headline: public DNS renders equal-or-better
        # replica performance over 75% of the time.
        for carrier in (*US_CARRIERS, *SK_CARRIERS):
            result = study.fig14_public_replicas(carrier)
            assert result.fraction_public_not_worse() > 0.7, carrier
